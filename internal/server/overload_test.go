package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/session"
	"repro/internal/structure"
	"repro/internal/testutil/leak"
)

// postJSONResp is postJSON plus the response headers, for the tests
// asserting Retry-After.
func postJSONResp(t *testing.T, url string, body any, headers map[string]string) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// requireRetryAfter asserts the header carries a whole number of
// seconds >= 1, the documented floor.
func requireRetryAfter(t *testing.T, h http.Header) {
	t.Helper()
	ra := h.Get("Retry-After")
	if ra == "" {
		t.Fatal("missing Retry-After header on an overload rejection")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
}

// TestAdmissionShed429 pins the limiter path: with one lane, no queue
// and a request gated in flight, the next request is shed with 429 +
// Retry-After and the cli overload code, and /statsz accounts the shed.
func TestAdmissionShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Limiter: overload.LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: -1, LatencyTarget: -1},
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	s.testGate = func(context.Context, string) {
		gateOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	}()
	<-entered

	status, h, raw := postJSONResp(t, ts.URL+"/eval", EvalRequest{Structure: flatStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, body %s", status, raw)
	}
	requireRetryAfter(t, h)
	er := decodeInto[ErrorResponse](t, raw)
	if er.Code != 6 {
		t.Errorf("shed code = %d, want 6 (overload)", er.Code)
	}
	close(release)
	<-firstDone

	st := s.limiter.Stats()
	if st.Shed == 0 || st.ShedQueue == 0 {
		t.Errorf("limiter stats = %+v, want at least one queue-full shed", st)
	}
}

// TestAdmissionQueueAdmits pins the queue half of admission: with one
// lane but a queue, a second request waits for the slot instead of
// being shed, and both answer 200.
func TestAdmissionQueueAdmits(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Limiter: overload.LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: 4, LatencyTarget: -1},
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	s.testGate = func(context.Context, string) {
		gateOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	var wg sync.WaitGroup
	statuses := make([]int, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		statuses[0], _ = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	}()
	<-entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		statuses[1], _ = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: flatStructure, Formula: "c(x)", Var: "x"}, nil)
	}()
	// Give the second request time to reach the queue, then open the
	// gate: the released slot must hand over to the queued waiter.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("request %d: status %d, want 200", i, status)
		}
	}
}

// TestBreakerCycle drives one structure's breaker through its full
// open → half-open → closed cycle with real requests: budget blowups
// open it, the open breaker fast-fails with 503 + Retry-After while a
// different structure is still served, and a post-cooldown probe closes
// it again.
func TestBreakerCycle(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Breaker: overload.BreakerConfig{Threshold: 2, Cooldown: 200 * time.Millisecond, ProbeSuccesses: 1},
	})
	snap := leak.Before()
	// Two distinct fresh formulas so neither answer is served from the
	// result cache (cache hits charge no budget and would not fail).
	for i := 0; i < 2; i++ {
		formula := "c(x) | c(x)"
		if i == 1 {
			formula = "c(x) | c(x) | c(x)"
		}
		status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: formula, Var: "x"}, map[string]string{"X-Budget": "1"})
		if status != http.StatusTooManyRequests {
			t.Fatalf("poison request %d: status %d, body %s", i, status, raw)
		}
	}

	// Threshold reached: the structure's breaker is open.
	status, h, raw := postJSONResp(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, body %s", status, raw)
	}
	requireRetryAfter(t, h)
	er := decodeInto[ErrorResponse](t, raw)
	if er.Code != 6 {
		t.Errorf("fast-fail code = %d, want 6 (overload)", er.Code)
	}

	// Per-structure isolation: a different structure is unaffected.
	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: flatStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("other structure during open breaker: status %d, body %s", status, raw)
	}

	// After the cooldown a probe runs; its success closes the breaker.
	time.Sleep(250 * time.Millisecond)
	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("probe request: status %d, body %s", status, raw)
	}
	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("post-close request: status %d, body %s", status, raw)
	}

	bt := s.breakerTotals()
	if bt.Counters.Opened < 1 || bt.Counters.HalfOpens < 1 || bt.Counters.Closed < 1 || bt.Counters.FastFails < 1 {
		t.Errorf("breaker counters = %+v, want a full open → half-open → closed cycle", bt.Counters)
	}
	if bt.Open != 0 {
		t.Errorf("breakers open = %d, want 0 after the cycle", bt.Open)
	}
	http.DefaultClient.CloseIdleConnections()
	snap.Check(t)
}

// TestStatszOverloadFields pins the new /statsz sections: admission is
// always present, breakers aggregate the registry, watchdog appears
// only when armed.
func TestStatszOverloadFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeInto[StatszResponse](t, mustRead(t, resp.Body))
	if stats.Admission.Admitted < 1 {
		t.Errorf("admission.admitted = %d, want >= 1", stats.Admission.Admitted)
	}
	if stats.Admission.Limit < 1 {
		t.Errorf("admission.limit = %d, want >= 1", stats.Admission.Limit)
	}
	if stats.Breakers.Tracked < 1 || stats.Breakers.Closed < 1 {
		t.Errorf("breakers = %+v, want the structure's breaker tracked and closed", stats.Breakers)
	}
	if stats.Watchdog != nil {
		t.Errorf("watchdog = %+v, want absent when MemWatermark is 0", stats.Watchdog)
	}
}

// TestWatchdogShedsTiers arms the watchdog with a 1-byte watermark (any
// real heap exceeds it) and checks one pass walks the whole ladder:
// result caches shed, program cache emptied, half the sessions evicted,
// every tier's trip counted and visible on /statsz.
func TestWatchdogShedsTiers(t *testing.T) {
	s, ts := newTestServer(t, Config{MemWatermark: 1})
	for i, st := range []string{pathStructure, flatStructure} {
		status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: st, Formula: "c(x)", Var: "x"}, nil)
		if status != http.StatusOK {
			t.Fatalf("warmup %d: status %d, body %s", i, status, raw)
		}
	}
	if s.progs.Len() == 0 {
		t.Fatal("warmup left the program cache empty")
	}
	if got := s.watchdog.CheckOnce(); got != 3 {
		t.Fatalf("CheckOnce shed %d tiers, want all 3 (heap can never fit under 1 byte)", got)
	}
	if n := s.progs.Len(); n != 0 {
		t.Errorf("program cache len = %d after shed, want 0", n)
	}
	s.mu.Lock()
	remaining := len(s.order)
	evictions := s.evictions
	s.mu.Unlock()
	if remaining != 1 || evictions != 1 {
		t.Errorf("sessions remaining = %d (evictions %d), want 1 of 2 evicted", remaining, evictions)
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeInto[StatszResponse](t, mustRead(t, resp.Body))
	if stats.Watchdog == nil {
		t.Fatal("statsz watchdog section missing with MemWatermark set")
	}
	if stats.Watchdog.Trips < 1 || len(stats.Watchdog.Tiers) != 3 {
		t.Fatalf("watchdog stats = %+v, want >= 1 trip across 3 tiers", stats.Watchdog)
	}
	for _, tier := range stats.Watchdog.Tiers {
		if tier.Trips < 1 {
			t.Errorf("tier %q trips = %d, want >= 1", tier.Name, tier.Trips)
		}
	}
}

// TestHeaderCeilings pins the MaxBudget / MaxTimeout boundary: a header
// at the ceiling is served, one past it (or 0, meaning unlimited) is a
// 400 usage error.
func TestHeaderCeilings(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBudget: 1_000_000, MaxTimeout: time.Second})
	req := EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}
	cases := []struct {
		name   string
		header map[string]string
		want   int
	}{
		{"budget_at_ceiling", map[string]string{"X-Budget": "1000000"}, http.StatusOK},
		{"budget_past_ceiling", map[string]string{"X-Budget": "1000001"}, http.StatusBadRequest},
		{"budget_zero_unlimited", map[string]string{"X-Budget": "0"}, http.StatusBadRequest},
		{"timeout_at_ceiling", map[string]string{"X-Timeout": "1s"}, http.StatusOK},
		{"timeout_past_ceiling", map[string]string{"X-Timeout": "1.001s"}, http.StatusBadRequest},
		{"timeout_zero_unlimited", map[string]string{"X-Timeout": "0s"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL+"/eval", req, tc.header)
			if status != tc.want {
				t.Fatalf("status %d, want %d; body %s", status, tc.want, raw)
			}
			if tc.want == http.StatusBadRequest {
				er := decodeInto[ErrorResponse](t, raw)
				if er.Code != 2 {
					t.Errorf("code = %d, want 2 (usage)", er.Code)
				}
			}
		})
	}
}

// TestHTTPServerHardening pins the listener timeouts: zero config
// resolves to the documented defaults, explicit values pass through,
// negative disables.
func TestHTTPServerHardening(t *testing.T) {
	hs := New(Config{}).newHTTPServer(context.Background())
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", hs.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if hs.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", hs.ReadTimeout, DefaultReadTimeout)
	}
	if hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", hs.IdleTimeout, DefaultIdleTimeout)
	}
	if hs.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Errorf("MaxHeaderBytes = %d, want %d", hs.MaxHeaderBytes, DefaultMaxHeaderBytes)
	}
	hs = New(Config{
		ReadHeaderTimeout: 7 * time.Second,
		ReadTimeout:       -1,
		IdleTimeout:       time.Minute,
		MaxHeaderBytes:    4096,
	}).newHTTPServer(context.Background())
	if hs.ReadHeaderTimeout != 7*time.Second || hs.ReadTimeout != 0 || hs.IdleTimeout != time.Minute || hs.MaxHeaderBytes != 4096 {
		t.Errorf("custom config: got (%v, %v, %v, %d)", hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout, hs.MaxHeaderBytes)
	}
}

// TestSlowlorisDisconnected proves the hardening end to end: a client
// that sends half a request line and stalls is disconnected once the
// header timeout fires, instead of holding the connection forever.
func TestSlowlorisDisconnected(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{ReadHeaderTimeout: 100 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, l, s, time.Second) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /eval HTTP/1.1\r\nHost: loris\r\nX-Tric")); err != nil {
		t.Fatal(err)
	}
	// The server may answer 408 before closing; what matters is that
	// the connection reaches EOF instead of idling past the timeout.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("connection still open 5s after the 100ms header timeout")
		}
		t.Fatalf("read: %v", err)
	}
	cancel()
	<-runDone
}

// TestDrainRacesMutate pins the SIGTERM-drain / POST-mutate race: a
// mutate held in flight when shutdown begins must complete, answer 200,
// and leave the registry keyed by the post-edit fingerprint — never a
// half-applied one.
func TestDrainRacesMutate(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snap := leak.Before()
	s := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	s.testGate = func(_ context.Context, op string) {
		if op != "mutate" {
			return
		}
		gateOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, l, s, 10*time.Second) }()

	url := "http://" + l.Addr().String()
	var status int
	var raw []byte
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		status, raw = postJSON(t, url+"/mutate", MutateRequest{
			Structure: pathStructure,
			Insert:    []MutateFact{{Pred: "c", Args: []string{"v3"}}},
		}, nil)
	}()
	<-entered
	cancel() // drain begins while the mutate is gated mid-flight
	select {
	case <-reqDone:
		t.Fatal("mutate finished before the gate released")
	case <-runDone:
		t.Fatal("Run returned while the mutate was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-reqDone
	if status != http.StatusOK {
		t.Fatalf("drained mutate: status %d, body %s", status, raw)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}

	// The registry must be keyed by the post-edit canonical fingerprint
	// (what a follow-up client would send), and the pre-edit key must be
	// gone — a half-applied re-key would strand either side.
	resp := decodeInto[MutateResponse](t, raw)
	post, err := structure.Parse(resp.Structure, nil)
	if err != nil {
		t.Fatalf("post-edit structure does not parse: %v", err)
	}
	newFP := session.Fingerprint(post)
	if fmt.Sprintf("%016x", newFP) != resp.Fingerprint {
		t.Fatalf("response fingerprint %s does not match post-edit text (%016x)", resp.Fingerprint, newFP)
	}
	pre, err := structure.Parse(pathStructure, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldFP := session.Fingerprint(pre)
	s.mu.Lock()
	_, hasNew := s.sessions[newFP]
	_, hasOld := s.sessions[oldFP]
	order := len(s.order)
	registered := len(s.sessions)
	s.mu.Unlock()
	if !hasNew {
		t.Error("post-edit fingerprint not in the registry")
	}
	if hasOld {
		t.Error("pre-edit fingerprint still in the registry after re-key")
	}
	if order != registered {
		t.Errorf("registry order has %d entries for %d sessions — a half-applied re-key", order, registered)
	}
	// The acceptance bar for drain: the goroutine count returns to its
	// pre-Run baseline once Run has returned.
	http.DefaultClient.CloseIdleConnections()
	snap.Check(t)
}

func mustRead(t *testing.T, r io.Reader) []byte {
	t.Helper()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// POST /mutate: edit a resident structure in place. The request names
// the structure by its current fact-list text; the server routes it to
// the same session /eval and /solve would use, applies the edit batch
// through Session.Mutate (retaining warm artifacts whenever the
// incremental machinery absorbs the edit), and re-keys the session
// registry so follow-up requests carrying the response's post-edit
// text keep hitting the warm session.
package server

import (
	"fmt"
	"net/http"

	"repro/internal/cli"
	"repro/internal/session"
	"repro/internal/structure"
)

// MutateFact names one fact of a mutation batch by predicate and
// element names.
type MutateFact struct {
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

// MutateRequest edits the structure given by its current fact-list
// text: elements in AddElems are added first, then Remove retracts
// facts, then Insert asserts facts (creating any missing elements).
// Removing an absent fact is a no-op.
type MutateRequest struct {
	Structure string       `json:"structure"`
	AddElems  []string     `json:"add_elems,omitempty"`
	Remove    []MutateFact `json:"remove,omitempty"`
	Insert    []MutateFact `json:"insert,omitempty"`
}

// MutateResponse returns the post-edit structure (canonical fact-list
// text — the key for follow-up requests against the warm session) and
// the session.MutationStats receipt saying how the edit was absorbed.
type MutateResponse struct {
	Structure         string `json:"structure"`
	Fingerprint       string `json:"fingerprint"`
	Changes           int    `json:"changes"`
	DeltaApplied      bool   `json:"delta_applied"`
	RepairFallback    bool   `json:"repair_fallback"`
	Invalidated       bool   `json:"invalidated"`
	ResultsMaintained int    `json:"results_maintained"`
	ResultsDropped    int    `json:"results_dropped"`
}

// checkFacts validates a fact list against the structure's signature up
// front, so a malformed request fails with 400 before Mutate runs (an
// edit function error would needlessly invalidate the session).
func checkFacts(st *structure.Structure, kind string, facts []MutateFact) error {
	for i, f := range facts {
		_, p, ok := st.Sig().Lookup(f.Pred)
		if !ok {
			return fmt.Errorf("%w: %s %d: unknown predicate %q", cli.ErrUsage, kind, i, f.Pred)
		}
		if len(f.Args) != p.Arity {
			return fmt.Errorf("%w: %s %d: %s expects %d args, got %d", cli.ErrUsage, kind, i, f.Pred, p.Arity, len(f.Args))
		}
	}
	return nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	st, err := parseStructure(req.Structure)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := checkFacts(st, "remove", req.Remove); err != nil {
		s.fail(w, err)
		return
	}
	if err := checkFacts(st, "insert", req.Insert); err != nil {
		s.fail(w, err)
		return
	}
	oldFP := session.Fingerprint(st)
	finish, err := s.admitOverload(ctx, []uint64{oldFP}, estimateCost(len(req.Structure), costMutate))
	if err != nil {
		s.fail(w, err)
		return
	}
	sess := s.sessionFor(st)
	if s.testGate != nil {
		s.testGate(ctx, "mutate")
	}
	ms, err := sess.Mutate(func(st *structure.Structure) error {
		for _, n := range req.AddElems {
			st.AddElem(n)
		}
		for _, f := range req.Remove {
			st.RemoveFact(f.Pred, f.Args...)
		}
		for _, f := range req.Insert {
			if err := st.AddFact(f.Pred, f.Args...); err != nil {
				return err
			}
		}
		return nil
	})
	finish(sameOutcome(err))
	if err != nil {
		s.fail(w, fmt.Errorf("%w: %v", cli.ErrUsage, err))
		return
	}
	// Re-key the registry under both the session's in-memory fingerprint
	// and the fingerprint of the canonical text we return: String()
	// orders tuples canonically while retraction reorders them in
	// memory, so a client re-sending the response text must still reach
	// this session rather than decompose a fresh one.
	var text string
	var memFP uint64
	sess.View(func(st *structure.Structure) {
		text = st.String()
		memFP = session.Fingerprint(st)
	})
	canonFP := memFP
	if canon, err := structure.Parse(text, nil); err == nil {
		canonFP = session.Fingerprint(canon)
	}
	s.rekeySession(sess, oldFP, memFP, canonFP)
	s.reply(w, http.StatusOK, MutateResponse{
		Structure:         text,
		Fingerprint:       fmt.Sprintf("%016x", canonFP),
		Changes:           ms.Changes,
		DeltaApplied:      ms.DeltaApplied,
		RepairFallback:    ms.RepairFallback,
		Invalidated:       ms.Invalidated,
		ResultsMaintained: ms.ResultsMaintained,
		ResultsDropped:    ms.ResultsDropped,
	})
}

// rekeySession moves sess from oldFP to the given fingerprints
// (deduplicated; aliases count against the registry cap like any other
// entry). A fingerprint already mapping to a different session is left
// alone — first structure wins, exactly as sessionFor resolves it.
func (s *Server) rekeySession(sess *session.Session, oldFP uint64, fps ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := false
	for _, fp := range fps {
		if fp == oldFP {
			keep = true
		}
	}
	if !keep && s.sessions[oldFP] == sess {
		delete(s.sessions, oldFP)
		for i, fp := range s.order {
			if fp == oldFP {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	for _, fp := range fps {
		if _, ok := s.sessions[fp]; ok {
			continue
		}
		if len(s.order) >= s.cfg.MaxSessions {
			delete(s.sessions, s.order[0])
			s.order = s.order[1:]
			s.evictions++
		}
		s.sessions[fp] = sess
		s.order = append(s.order, fp)
	}
}

// Overload control for the decision service: every work endpoint
// (/eval, /solve, /batch, /mutate) passes through a per-structure
// circuit breaker and the shared adaptive admission limiter before any
// evaluation starts. /healthz and /statsz bypass both — observability
// must survive overload.
//
// Admission order is breaker first, limiter second: a breaker fast-fail
// is a per-structure verdict that costs one mutex acquire, so doomed
// requests never consume queue positions. When the limiter sheds a
// request that a half-open breaker had admitted as its probe, the probe
// slot is returned via Breaker.Cancel so the breaker is not wedged
// waiting for a Record that will never come.
package server

import (
	"context"
	"errors"

	"repro/internal/faultinject"
	"repro/internal/overload"
	"repro/internal/session"
	"repro/internal/stage"
)

// Cost-model weights: the paper's linearity result makes structure text
// length a faithful proxy for evaluation cost, scaled by how much work
// the mode layers on top of one pass (solve modes run the DP over the
// whole decomposition; decision-mode eval compiles sentence programs).
// The limiter calibrates the absolute scale itself via its cost EWMA —
// only the ratios matter here.
const (
	costEval     = 1
	costDecision = 2
	costSolve    = 2
	costMutate   = 1
)

// estimateCost is the cheap pre-admission work estimate: structure size
// (fact-list text length) times the mode weight.
func estimateCost(structLen int, weight int64) int64 {
	c := int64(structLen) * weight
	if c < 1 {
		c = 1
	}
	return c
}

// breakerFor returns the breaker for one structure fingerprint,
// creating it under a FIFO cap mirroring the session registry's.
func (s *Server) breakerFor(fp uint64) *overload.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.breakers[fp]; ok {
		return b
	}
	if len(s.breakerOrder) >= maxBreakers {
		delete(s.breakers, s.breakerOrder[0])
		s.breakerOrder = s.breakerOrder[1:]
	}
	b := overload.NewBreaker(s.cfg.Breaker)
	s.breakers[fp] = b
	s.breakerOrder = append(s.breakerOrder, fp)
	return b
}

// breakerFailure classifies an evaluation outcome for the breaker:
// capacity-poisoning failures are recovered panics, budget blowups and
// injected faults. Usage errors, deadline expiry and clean answers are
// successes — a client asking a malformed question must not open the
// breaker for everyone else using the same structure.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	var pe *stage.PanicError
	return errors.As(err, &pe) ||
		errors.Is(err, stage.ErrBudgetExceeded) ||
		errors.Is(err, faultinject.ErrInjected)
}

// admitOverload runs the overload-control gauntlet for a request
// touching the given structure fingerprints (one for /eval, /solve,
// /mutate; all of the batch's for /batch). On admission it returns a
// finish callback that MUST be called exactly once with the request's
// outcome per fingerprint — outcomeFor lets a batch record each
// structure's own verdict, so one poisoned structure does not open its
// batch-mates' breakers. finish releases the limiter slot and records
// every breaker. On rejection admitOverload returns the 429/503-mapped
// error with its Retry-After hint, leaving no state behind.
func (s *Server) admitOverload(ctx context.Context, fps []uint64, cost int64) (finish func(outcomeFor func(fp uint64) error), err error) {
	type admittedBreaker struct {
		fp uint64
		b  *overload.Breaker
	}
	breakers := make([]admittedBreaker, 0, len(fps))
	seen := make(map[*overload.Breaker]bool, len(fps))
	for _, fp := range fps {
		b := s.breakerFor(fp)
		if seen[b] {
			continue
		}
		seen[b] = true
		if err := b.Allow(); err != nil {
			for _, a := range breakers {
				a.b.Cancel()
			}
			return nil, err
		}
		breakers = append(breakers, admittedBreaker{fp: fp, b: b})
	}
	release, err := s.limiter.Acquire(ctx, cost)
	if err != nil {
		for _, a := range breakers {
			a.b.Cancel()
		}
		return nil, err
	}
	return func(outcomeFor func(fp uint64) error) {
		release()
		for _, a := range breakers {
			a.b.Record(breakerFailure(outcomeFor(a.fp)))
		}
	}, nil
}

// sameOutcome adapts a single-structure outcome to admitOverload's
// per-fingerprint finish callback.
func sameOutcome(err error) func(uint64) error {
	return func(uint64) error { return err }
}

// BreakerTotals is the /statsz aggregate over the per-fingerprint
// breaker registry: how many breakers are tracked, their current states
// and their summed lifetime counters.
type BreakerTotals struct {
	Tracked  int                      `json:"tracked"`
	Open     int                      `json:"open"`
	HalfOpen int                      `json:"half_open"`
	Closed   int                      `json:"closed"`
	Counters overload.BreakerCounters `json:"counters"`
}

// breakerTotals snapshots the breaker registry.
func (s *Server) breakerTotals() BreakerTotals {
	s.mu.Lock()
	breakers := make([]*overload.Breaker, 0, len(s.breakers))
	for _, b := range s.breakers {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	t := BreakerTotals{Tracked: len(breakers)}
	for _, b := range breakers {
		switch b.State() {
		case overload.BreakerOpen:
			t.Open++
		case overload.BreakerHalfOpen:
			t.HalfOpen++
		default:
			t.Closed++
		}
		c := b.Counters()
		t.Counters.Opened += c.Opened
		t.Counters.HalfOpens += c.HalfOpens
		t.Counters.Closed += c.Closed
		t.Counters.FastFails += c.FastFails
	}
	return t
}

// residentSessions snapshots the deduplicated resident sessions.
func (s *Server) residentSessions() []*session.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	resident := make([]*session.Session, 0, len(s.sessions))
	seen := make(map[*session.Session]bool, len(s.sessions))
	for _, sess := range s.sessions {
		if !seen[sess] {
			seen[sess] = true
			resident = append(resident, sess)
		}
	}
	return resident
}

// watchdogTiers builds the memory watchdog's shedding ladder, cheapest
// first:
//
//  1. per-session result and solver caches (decompositions and
//     compiled programs survive; repeat queries recompute answers)
//  2. the shared program cache (recompilation on demand)
//  3. FIFO eviction of the older half of the session registry
//     (decompositions rebuilt on next touch — the most expensive loss)
func (s *Server) watchdogTiers() []overload.Tier {
	return []overload.Tier{
		{Name: "session-results", Shed: func() int {
			n := 0
			for _, sess := range s.residentSessions() {
				n += sess.ShedResults()
			}
			return n
		}},
		{Name: "program-cache", Shed: s.progs.Shed},
		{Name: "session-evict", Shed: s.evictOldestHalf},
	}
}

// evictOldestHalf drops the older half of the session registry (at
// least one session when any are resident), counting each drop as an
// eviction.
func (s *Server) evictOldestHalf() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.order) / 2
	if n == 0 && len(s.order) > 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		delete(s.sessions, s.order[0])
		s.order = s.order[1:]
		s.evictions++
	}
	return n
}

// Package server implements monadicd, the networked decision service:
// a stdlib net/http front end over the session layer. Requests carry a
// structure (fact-list text) plus a query; the server shards work into
// per-structure sessions keyed by content fingerprint, so every request
// against the same structure shares one decomposition, one τ_td build,
// one compiled program per formula, and the per-session result and
// solver caches — including requests that arrive while the artifacts
// are still being built (the session layer's single-flight).
//
// Admission control mints a fresh stage.Budget and deadline for every
// request (Budgets are single-run tallies; see stage.Budget), from the
// server-wide defaults or the X-Budget / X-Timeout request headers.
// Failures map the cli exit taxonomy onto HTTP status codes via
// cli.HTTPStatus: usage → 400, budget → 429, timeout → 504, panic and
// everything else → 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/overload"
	"repro/internal/session"
	"repro/internal/solver"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/threecol"
	"repro/internal/vcover"
	"repro/internal/wis"
)

// Config carries the server-wide defaults. The zero value is a usable
// server: no budget, no deadline, default session cap, a fresh shared
// program cache, default admission limits, breakers, no watchdog.
type Config struct {
	// Budget is the default per-request uniform resource budget for
	// each metered dimension (0 = unlimited). Overridable per request
	// via the X-Budget header.
	Budget int64
	// Timeout is the default per-request deadline (0 = none).
	// Overridable per request via the X-Timeout header (a Go duration,
	// e.g. "500ms").
	Timeout time.Duration
	// MaxBudget caps the X-Budget header (0 = no ceiling): a request
	// demanding more is rejected with 400 rather than allowed to squat
	// on capacity. The server-wide default Budget is not checked against
	// it — the ceiling guards against clients, not configuration.
	MaxBudget int64
	// MaxTimeout caps the X-Timeout header the same way (0 = no
	// ceiling).
	MaxTimeout time.Duration
	// Backend is the default evaluation backend for /eval and /batch
	// ("" = core.DefaultBackend, the automaton pipeline). Overridable
	// per request via the X-Backend header; unknown names are a 400.
	Backend string
	// MaxSessions caps the resident session registry; beyond it the
	// oldest session is evicted FIFO (its program-cache entries survive
	// in the shared cache). 0 means DefaultMaxSessions.
	MaxSessions int
	// MaxBody caps request body size in bytes. 0 means DefaultMaxBody.
	MaxBody int64
	// Progs is the shared warm program cache; nil means a fresh one.
	Progs *session.ProgramCache

	// Limiter configures adaptive admission in front of /eval, /solve,
	// /batch and /mutate (see overload.Limiter). Zero fields resolve to
	// the overload package defaults, except LatencyTarget, which
	// defaults to DefaultLatencyTarget here (negative disables
	// adaptation, freezing the limit at Initial).
	Limiter overload.LimiterConfig
	// Breaker configures the per-structure-fingerprint circuit breakers
	// (see overload.Breaker). Zero fields resolve to the overload
	// package defaults.
	Breaker overload.BreakerConfig
	// MemWatermark, when nonzero, enables the memory watchdog: a heap
	// reading above this many bytes sheds caches in tiers (per-session
	// result caches → shared program cache → FIFO session eviction).
	MemWatermark uint64
	// WatchdogInterval is the watchdog sampling period (0 = the
	// overload package default).
	WatchdogInterval time.Duration

	// ReadHeaderTimeout, ReadTimeout and IdleTimeout harden the HTTP
	// listener against trickling clients (slowloris): 0 resolves to the
	// defaults below, negative disables the timeout. MaxHeaderBytes
	// caps request header size (0 = DefaultMaxHeaderBytes).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
}

// Defaults for Config zero fields.
const (
	DefaultMaxSessions       = 256
	DefaultMaxBody           = 8 << 20
	DefaultLatencyTarget     = 250 * time.Millisecond
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultMaxHeaderBytes    = 1 << 20
	// maxBreakers caps the per-fingerprint breaker registry (FIFO
	// eviction beyond it, like the session registry).
	maxBreakers = 1024
)

// Overload defaults re-exported for cmd/monadicd's flag definitions.
const (
	DefaultMaxConcurrency   = overload.DefaultMaxLimit
	DefaultQueueCap         = overload.DefaultQueueCap
	DefaultBreakerThreshold = overload.DefaultBreakerThreshold
	DefaultBreakerCooldown  = overload.DefaultBreakerCooldown
)

// Server is the decision service: a session registry sharded by
// structure fingerprint plus the HTTP handlers over it. All methods
// are safe for concurrent use.
type Server struct {
	cfg      Config
	progs    *session.ProgramCache
	start    time.Time
	limiter  *overload.Limiter
	watchdog *overload.Watchdog // nil when MemWatermark is 0

	mu           sync.Mutex
	sessions     map[uint64]*session.Session
	order        []uint64 // insertion order, for FIFO eviction
	evictions    int64
	requests     int64
	statuses     map[int]int64    // HTTP status → responses sent
	backendReqs  map[string]int64 // backend name → admitted eval/batch requests
	breakers     map[uint64]*overload.Breaker
	breakerOrder []uint64 // insertion order, for FIFO eviction

	// testGate, when set, is called by handlers after admission and
	// before evaluating, with the request context — a seam for the
	// drain tests to hold a request in flight deterministically.
	testGate func(ctx context.Context, op string)
}

// New builds a Server from cfg, resolving zero fields to defaults.
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	progs := cfg.Progs
	if progs == nil {
		progs = session.NewProgramCache()
	}
	switch {
	case cfg.Limiter.LatencyTarget == 0:
		cfg.Limiter.LatencyTarget = DefaultLatencyTarget
	case cfg.Limiter.LatencyTarget < 0:
		cfg.Limiter.LatencyTarget = 0 // adaptation off, fixed limit
	}
	s := &Server{
		cfg:         cfg,
		progs:       progs,
		start:       time.Now(),
		limiter:     overload.NewLimiter(cfg.Limiter),
		sessions:    make(map[uint64]*session.Session),
		statuses:    make(map[int]int64),
		backendReqs: make(map[string]int64),
		breakers:    make(map[uint64]*overload.Breaker),
	}
	if cfg.MemWatermark > 0 {
		s.watchdog = overload.NewWatchdog(overload.WatchdogConfig{
			Watermark: cfg.MemWatermark,
			Interval:  cfg.WatchdogInterval,
		}, s.watchdogTiers())
	}
	return s
}

// Handler returns the service mux:
//
//	POST /eval    evaluate one MSO query over one structure
//	POST /solve   run a named solver problem (decide/count/optimize)
//	POST /batch   evaluate many queries grouped per structure
//	POST /mutate  edit a resident structure, keeping its session warm
//	GET  /healthz liveness
//	GET  /statsz  session / cache / status counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/eval", s.post(s.handleEval))
	mux.HandleFunc("/solve", s.post(s.handleSolve))
	mux.HandleFunc("/batch", s.post(s.handleBatch))
	mux.HandleFunc("/mutate", s.post(s.handleMutate))
	mux.HandleFunc("/healthz", s.get(s.handleHealthz))
	mux.HandleFunc("/statsz", s.get(s.handleStatsz))
	return mux
}

func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.reply(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
			return
		}
		h(w, r)
	}
}

func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			s.reply(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only", Status: http.StatusMethodNotAllowed})
			return
		}
		h(w, r)
	}
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Stage names the pipeline stage the error carries, when it does.
	Stage string `json:"stage,omitempty"`
	// Status echoes the HTTP status; Code is the cli exit-taxonomy
	// class the status was derived from.
	Status int `json:"status"`
	Code   int `json:"code,omitempty"`
}

func (s *Server) reply(w http.ResponseWriter, status int, payload any) {
	s.mu.Lock()
	s.requests++
	s.statuses[status]++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload) //nolint:errcheck // client gone is not our error
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	status := cli.HTTPStatus(err)
	// Overload rejections (admission shed → 429, breaker open → 503)
	// carry the server's capacity estimate; surface it the standard way.
	if ra := cli.RetryAfter(err); ra > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
	}
	s.reply(w, status, ErrorResponse{
		Error:  err.Error(),
		Stage:  string(stage.Of(err)),
		Status: status,
		Code:   cli.ExitCode(err),
	})
}

// admit builds the request context: a fresh single-run stage.Budget and
// deadline from the server defaults, overridden by the X-Budget and
// X-Timeout headers. Minting per request is load-bearing — a Budget is
// a cumulative tally, so sharing one across requests would turn steady
// load into spurious 429s (see stage.Budget's contract). Header values
// above the configured MaxBudget / MaxTimeout ceilings are a 400, not a
// clamp: silently shrinking what a client asked for would turn its
// requests into surprise 429s/504s. A header of 0 means "unlimited" and
// is likewise rejected when a ceiling is set.
func (s *Server) admit(r *http.Request) (context.Context, context.CancelFunc, error) {
	n := s.cfg.Budget
	if h := r.Header.Get("X-Budget"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v < 0 {
			return nil, nil, fmt.Errorf("%w: X-Budget %q", cli.ErrUsage, h)
		}
		if s.cfg.MaxBudget > 0 && (v == 0 || v > s.cfg.MaxBudget) {
			return nil, nil, fmt.Errorf("%w: X-Budget %d exceeds the server ceiling %d", cli.ErrUsage, v, s.cfg.MaxBudget)
		}
		n = v
	}
	d := s.cfg.Timeout
	if h := r.Header.Get("X-Timeout"); h != "" {
		v, err := time.ParseDuration(h)
		if err != nil || v < 0 {
			return nil, nil, fmt.Errorf("%w: X-Timeout %q", cli.ErrUsage, h)
		}
		if s.cfg.MaxTimeout > 0 && (v == 0 || v > s.cfg.MaxTimeout) {
			return nil, nil, fmt.Errorf("%w: X-Timeout %v exceeds the server ceiling %v", cli.ErrUsage, v, s.cfg.MaxTimeout)
		}
		d = v
	}
	b := stage.Uniform(n)
	if d > 0 {
		if b == nil {
			b = &stage.Budget{}
		}
		b.Deadline = time.Now().Add(d)
	}
	ctx, cancel := stage.ApplyDeadline(r.Context(), b)
	return ctx, cancel, nil
}

// backendName resolves the request's evaluation backend: the X-Backend
// header, falling back to the server default. The name is validated
// against the backend registry — an unknown name is a usage error (400),
// mirroring the X-Budget ceiling check — and returned normalized.
func (s *Server) backendName(r *http.Request) (string, error) {
	name := r.Header.Get("X-Backend")
	if name == "" {
		name = s.cfg.Backend
	}
	b, err := core.BackendByName(name)
	if err != nil {
		return "", fmt.Errorf("%w: X-Backend: %v", cli.ErrUsage, err)
	}
	return b.Name(), nil
}

// countBackend tallies one admitted eval/batch request per backend.
func (s *Server) countBackend(name string) {
	s.mu.Lock()
	s.backendReqs[name]++
	s.mu.Unlock()
}

// sessionFor returns the resident session for st's content fingerprint,
// creating (and FIFO-evicting) under the registry cap. Sessions share
// the server's program cache, so an evicted-and-recreated session still
// skips recompilation.
func (s *Server) sessionFor(st *structure.Structure) *session.Session {
	fp := session.Fingerprint(st)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[fp]; ok {
		return sess
	}
	if len(s.order) >= s.cfg.MaxSessions {
		delete(s.sessions, s.order[0])
		s.order = s.order[1:]
		s.evictions++
	}
	sess := session.NewWithCache(st, s.progs)
	s.sessions[fp] = sess
	s.order = append(s.order, fp)
	return sess
}

func (s *Server) decode(r *http.Request, into any) error {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("%w: request body: %v", cli.ErrUsage, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("%w: request body: trailing data", cli.ErrUsage)
	}
	return nil
}

func parseStructure(src string) (*structure.Structure, error) {
	st, err := structure.Parse(src, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", cli.ErrUsage, err)
	}
	return st, nil
}

// EvalRequest asks for one MSO query over one structure (fact-list
// text, see structure.Parse). An empty Var means decision mode: the
// formula must be a sentence and the answer is its truth value.
type EvalRequest struct {
	Structure string `json:"structure"`
	Formula   string `json:"formula"`
	Var       string `json:"var,omitempty"`
}

// EvalResponse carries the answer plus the decomposition's shape.
type EvalResponse struct {
	// Holds is the sentence's truth value (decision mode only).
	Holds *bool `json:"holds,omitempty"`
	// Selected lists the element names satisfying the unary query
	// (unary mode only; empty slice when none do).
	Selected []string `json:"selected,omitempty"`
	Width    int      `json:"width"`
	TDNodes  int      `json:"td_nodes"`
}

func evalOne(ctx context.Context, sess *session.Session, formula, xVar, backend string) (EvalResponse, error) {
	phi, err := mso.Parse(formula)
	if err != nil {
		return EvalResponse{}, fmt.Errorf("%w: formula: %v", cli.ErrUsage, err)
	}
	opts := core.Options{Decision: xVar == "", Backend: backend}
	res, err := sess.Eval(ctx, phi, xVar, opts)
	if err != nil {
		return EvalResponse{}, err
	}
	resp := EvalResponse{Width: res.Width, TDNodes: res.TDNodes}
	if xVar == "" {
		h := res.Holds
		resp.Holds = &h
	} else {
		resp.Selected = []string{}
		if res.Selected != nil {
			// View serializes the name lookups against /mutate edits.
			sess.View(func(st *structure.Structure) {
				for _, id := range res.Selected.Elems() {
					resp.Selected = append(resp.Selected, st.Name(id))
				}
			})
		}
	}
	return resp, nil
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	backend, err := s.backendName(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := parseStructure(req.Structure)
	if err != nil {
		s.fail(w, err)
		return
	}
	weight := int64(costEval)
	if req.Var == "" {
		weight = costDecision
	}
	finish, err := s.admitOverload(ctx, []uint64{session.Fingerprint(st)}, estimateCost(len(req.Structure), weight))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.countBackend(backend)
	sess := s.sessionFor(st)
	if s.testGate != nil {
		s.testGate(ctx, "eval")
	}
	resp, err := evalOne(ctx, sess, req.Formula, req.Var, backend)
	finish(sameOutcome(err))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.reply(w, http.StatusOK, resp)
}

// SolveRequest runs a named FPT problem over the primal graph of the
// structure, on the session's cached decomposition. Problems:
// "threecol", "kcolor" (requires K), "vcover", "domset", "wis"
// (optional Weights, one per element in structure order). Modes:
// "decide", "count", "optimize".
type SolveRequest struct {
	Structure string `json:"structure"`
	Problem   string `json:"problem"`
	Mode      string `json:"mode"`
	K         int    `json:"k,omitempty"`
	Weights   []int  `json:"weights,omitempty"`
}

// SolveResponse carries the mode-specific answer: OK for decide, Count
// (decimal) for count, Feasible+Value for optimize. For "wis" the
// optimize Value is the maximum total weight (the tropical solver's
// negated minimum).
type SolveResponse struct {
	Problem  string `json:"problem"`
	Mode     string `json:"mode"`
	OK       *bool  `json:"ok,omitempty"`
	Count    string `json:"count,omitempty"`
	Feasible *bool  `json:"feasible,omitempty"`
	Value    *int   `json:"value,omitempty"`
}

func problemFor(req SolveRequest, g *graph.Graph) (solver.Problem[uint64], error) {
	switch req.Problem {
	case "threecol":
		return threecol.Problem(g, 3), nil
	case "kcolor":
		if req.K <= 0 {
			return nil, fmt.Errorf("%w: kcolor requires k ≥ 1, got %d", cli.ErrUsage, req.K)
		}
		return threecol.Problem(g, req.K), nil
	case "vcover":
		return vcover.Problem(g), nil
	case "domset":
		return domset.Problem(g), nil
	case "wis":
		p, err := wis.Problem(g, req.Weights)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", cli.ErrUsage, err)
		}
		return p, nil
	default:
		return nil, fmt.Errorf("%w: unknown problem %q", cli.ErrUsage, req.Problem)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	st, err := parseStructure(req.Structure)
	if err != nil {
		s.fail(w, err)
		return
	}
	finish, err := s.admitOverload(ctx, []uint64{session.Fingerprint(st)}, estimateCost(len(req.Structure), costSolve))
	if err != nil {
		s.fail(w, err)
		return
	}
	resp, err := s.solveAdmitted(ctx, req, st)
	finish(sameOutcome(err))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.reply(w, http.StatusOK, resp)
}

// solveAdmitted is handleSolve past admission, factored out so the
// finish callback sees every outcome on one path.
func (s *Server) solveAdmitted(ctx context.Context, req SolveRequest, st *structure.Structure) (SolveResponse, error) {
	sess := s.sessionFor(st)
	if s.testGate != nil {
		s.testGate(ctx, "solve")
	}
	// Primal vertex IDs are structure element IDs, matching the bags of
	// the session's decomposition. The snapshot is taken under View to
	// serialize against /mutate edits.
	var g *graph.Graph
	sess.View(func(st *structure.Structure) { g = graph.Primal(st) })
	p, err := problemFor(req, g)
	if err != nil {
		return SolveResponse{}, err
	}
	resp := SolveResponse{Problem: req.Problem, Mode: req.Mode}
	switch req.Mode {
	case "decide":
		ok, err := session.SolveDecide(ctx, sess, p)
		if err != nil {
			return SolveResponse{}, err
		}
		resp.OK = &ok
	case "count":
		n, err := session.SolveCount(ctx, sess, p)
		if err != nil {
			return SolveResponse{}, err
		}
		resp.Count = n.String()
	case "optimize":
		der, err := session.SolveOptimize(ctx, sess, p)
		if err != nil {
			return SolveResponse{}, err
		}
		feasible := der != nil
		resp.Feasible = &feasible
		if feasible {
			v := der.Value
			if req.Problem == "wis" {
				v = -v
			}
			resp.Value = &v
		}
	default:
		return SolveResponse{}, fmt.Errorf("%w: unknown mode %q", cli.ErrUsage, req.Mode)
	}
	return resp, nil
}

// BatchRequest evaluates many queries over a small set of structures in
// one round trip. Queries name their structure by index; all queries
// against one structure share the same session, so k queries cost one
// decomposition.
type BatchRequest struct {
	Structures []string     `json:"structures"`
	Queries    []BatchQuery `json:"queries"`
}

// BatchQuery is one query of a batch; Structure indexes
// BatchRequest.Structures.
type BatchQuery struct {
	Structure int    `json:"structure"`
	Formula   string `json:"formula"`
	Var       string `json:"var,omitempty"`
}

// BatchResult is one query's outcome: Status is the per-query HTTP
// taxonomy code (the batch itself answers 200 once admitted).
type BatchResult struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	EvalResponse
}

// BatchStructureStat reports the session counters consumed while this
// batch ran against one structure — the cache-sharing receipt (k
// queries, Decompositions 1).
type BatchStructureStat struct {
	Decompositions   int `json:"decompositions"`
	Compiles         int `json:"compiles"`
	CompileCacheHits int `json:"compile_cache_hits"`
	Evals            int `json:"evals"`
	ResultCacheHits  int `json:"result_cache_hits"`
}

// BatchResponse mirrors the request: Results[i] answers Queries[i],
// Structures[j] accounts for Structures[j] of the request.
type BatchResponse struct {
	Results    []BatchResult        `json:"results"`
	Structures []BatchStructureStat `json:"structures"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer cancel()
	backend, err := s.backendName(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	structures := make([]*structure.Structure, len(req.Structures))
	fps := make([]uint64, len(req.Structures))
	cost := int64(0)
	for i, src := range req.Structures {
		st, err := parseStructure(src)
		if err != nil {
			s.fail(w, fmt.Errorf("structure %d: %w", i, err))
			return
		}
		structures[i] = st
		fps[i] = session.Fingerprint(st)
		cost += estimateCost(len(src), costDecision)
	}
	// One admission covers the whole batch (it holds one concurrency
	// slot), but every structure's breaker must agree to it and each
	// records its own verdict afterwards.
	finish, err := s.admitOverload(ctx, fps, cost)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.countBackend(backend)
	sessions := make([]*session.Session, len(req.Structures))
	before := make([]session.Stats, len(req.Structures))
	for i, st := range structures {
		sessions[i] = s.sessionFor(st)
		before[i] = sessions[i].Stats()
	}
	if s.testGate != nil {
		s.testGate(ctx, "batch")
	}
	resp := BatchResponse{Results: make([]BatchResult, len(req.Queries))}
	worst := make(map[uint64]error, len(fps))
	for i, q := range req.Queries {
		if q.Structure < 0 || q.Structure >= len(sessions) {
			err := fmt.Errorf("%w: query %d: structure index %d out of range", cli.ErrUsage, i, q.Structure)
			resp.Results[i] = BatchResult{Status: cli.HTTPStatus(err), Error: err.Error()}
			continue
		}
		one, err := evalOne(ctx, sessions[q.Structure], q.Formula, q.Var, backend)
		if err != nil {
			if breakerFailure(err) && worst[fps[q.Structure]] == nil {
				worst[fps[q.Structure]] = err
			}
			resp.Results[i] = BatchResult{Status: cli.HTTPStatus(err), Error: err.Error()}
			continue
		}
		resp.Results[i] = BatchResult{Status: http.StatusOK, EvalResponse: one}
	}
	finish(func(fp uint64) error { return worst[fp] })
	for i, sess := range sessions {
		after := sess.Stats()
		resp.Structures = append(resp.Structures, BatchStructureStat{
			Decompositions:   after.Decompositions - before[i].Decompositions,
			Compiles:         after.Compiles - before[i].Compiles,
			CompileCacheHits: after.CompileCacheHits - before[i].CompileCacheHits,
			Evals:            after.Evals - before[i].Evals,
			ResultCacheHits:  after.ResultCacheHits - before[i].ResultCacheHits,
		})
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ProgCacheStats is the /statsz view of the shared program cache.
type ProgCacheStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Len    int `json:"len"`
	Cap    int `json:"cap"`
}

// StatszResponse is the /statsz body: request/status counters, session
// registry occupancy, the shared program cache, the session-layer
// counters summed over resident sessions, the datalog streaming
// engine's process-wide counters (which, unlike SessionTotals, also
// cover evicted sessions and non-session evaluations), and the overload
// layer: admission limiter, breaker registry, memory watchdog.
type StatszResponse struct {
	UptimeSeconds    float64          `json:"uptime_seconds"`
	Requests         int64            `json:"requests"`
	StatusCounts     map[string]int64 `json:"status_counts"`
	Sessions         int              `json:"sessions"`
	SessionCap       int              `json:"session_cap"`
	SessionEvictions int64            `json:"session_evictions"`
	// Backends counts admitted /eval and /batch requests per evaluation
	// backend (resolved from X-Backend or the server default). The
	// per-backend evaluation counts — after result-cache hits — are in
	// SessionTotals.EvalsByBackend.
	Backends      map[string]int64        `json:"backends"`
	ProgramCache  ProgCacheStats          `json:"program_cache"`
	SessionTotals session.Stats           `json:"session_totals"`
	Engine        datalog.EngineStats     `json:"engine"`
	Admission     overload.LimiterStats   `json:"admission"`
	Breakers      BreakerTotals           `json:"breakers"`
	Watchdog      *overload.WatchdogStats `json:"watchdog,omitempty"`
}

// SessionTotals returns the session-layer counters summed over the
// resident sessions (evicted sessions' counters are gone with them).
// A session registered under several fingerprints — /mutate aliases the
// pre- and post-edit keys to one session — counts once.
func (s *Server) SessionTotals() session.Stats {
	s.mu.Lock()
	resident := make([]*session.Session, 0, len(s.sessions))
	seen := make(map[*session.Session]bool, len(s.sessions))
	for _, sess := range s.sessions {
		if !seen[sess] {
			seen[sess] = true
			resident = append(resident, sess)
		}
	}
	s.mu.Unlock()
	var t session.Stats
	for _, sess := range resident {
		st := sess.Stats()
		t.Decompositions += st.Decompositions
		t.TupleNormalizations += st.TupleNormalizations
		t.NiceNormalizations += st.NiceNormalizations
		t.TDBuilds += st.TDBuilds
		t.Compiles += st.Compiles
		t.CompileCacheHits += st.CompileCacheHits
		t.Evals += st.Evals
		for k, v := range st.EvalsByBackend {
			if t.EvalsByBackend == nil {
				t.EvalsByBackend = map[string]int{}
			}
			t.EvalsByBackend[k] += v
		}
		t.ResultCacheHits += st.ResultCacheHits
		t.SolverSolves += st.SolverSolves
		t.SolverCacheHits += st.SolverCacheHits
		t.Invalidations += st.Invalidations
		t.DeltasApplied += st.DeltasApplied
		t.RepairFallbacks += st.RepairFallbacks
		t.TuplesStreamed += st.TuplesStreamed
		t.JoinsPushedDown += st.JoinsPushedDown
		if st.PeakBufferedTuples > t.PeakBufferedTuples {
			t.PeakBufferedTuples = st.PeakBufferedTuples
		}
	}
	return t
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatszResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.requests,
		StatusCounts:     make(map[string]int64, len(s.statuses)),
		Sessions:         len(s.sessions),
		SessionCap:       s.cfg.MaxSessions,
		SessionEvictions: s.evictions,
		Backends:         make(map[string]int64, len(s.backendReqs)),
	}
	for code, n := range s.statuses {
		resp.StatusCounts[strconv.Itoa(code)] = n
	}
	for name, n := range s.backendReqs {
		resp.Backends[name] = n
	}
	s.mu.Unlock()
	resp.SessionTotals = s.SessionTotals()
	resp.Engine = datalog.ReadEngineStats()
	hits, misses := s.progs.Stats()
	resp.ProgramCache = ProgCacheStats{Hits: hits, Misses: misses, Len: s.progs.Len(), Cap: s.progs.Cap()}
	resp.Admission = s.limiter.Stats()
	resp.Breakers = s.breakerTotals()
	if s.watchdog != nil {
		ws := s.watchdog.Stats()
		resp.Watchdog = &ws
	}
	s.reply(w, http.StatusOK, resp)
}

// newHTTPServer builds the hardened http.Server: read-header, read and
// idle timeouts (slowloris defense — a client trickling bytes must not
// hold a connection open indefinitely) and a header-size cap, resolved
// from the Config with 0 meaning the package default and negative
// meaning disabled. There is deliberately no WriteTimeout: response
// time is governed per request by the budget/deadline plumbing, and a
// blanket write timeout would kill legitimately long evaluations that
// the operator chose not to bound.
func (s *Server) newHTTPServer(base context.Context) *http.Server {
	resolve := func(v, def time.Duration) time.Duration {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0
		}
		return v
	}
	maxHeader := s.cfg.MaxHeaderBytes
	if maxHeader <= 0 {
		maxHeader = DefaultMaxHeaderBytes
	}
	return &http.Server{
		Handler:           s.Handler(),
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: resolve(s.cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       resolve(s.cfg.ReadTimeout, DefaultReadTimeout),
		IdleTimeout:       resolve(s.cfg.IdleTimeout, DefaultIdleTimeout),
		MaxHeaderBytes:    maxHeader,
	}
}

// Run serves s on l until ctx is canceled, then drains: it stops
// accepting, waits up to grace for in-flight requests to finish, and
// only then cancels the base context — which aborts any evaluation that
// outlived the grace through the existing context plumbing (budget
// deadlines and evaluator polling), so handlers return promptly instead
// of being abandoned mid-computation. Returns nil after a clean drain.
func Run(ctx context.Context, l net.Listener, s *Server, grace time.Duration) error {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := s.newHTTPServer(base)
	if s.watchdog != nil {
		go s.watchdog.Run(base)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := hs.Shutdown(sctx)
	if err != nil {
		// The grace expired with requests still in flight. Abort their
		// evaluations through the context plumbing and give the
		// handlers one more grace to answer (they fail fast once their
		// context is canceled); only then force connections closed.
		cancelBase()
		sctx2, cancel2 := context.WithTimeout(context.Background(), grace)
		defer cancel2()
		if hs.Shutdown(sctx2) != nil {
			hs.Close()
		}
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

package server

import (
	"io"
	"net/http"
	"reflect"
	"testing"
)

// TestMutateKeepsSessionWarm is the end-to-end incremental story: eval
// warms a session, /mutate edits the structure through it, and
// re-evaluating with the post-edit text the response returned hits the
// same warm session — the maintained result answers without a new
// decomposition or evaluation.
func TestMutateKeepsSessionWarm(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("warm-up eval: status %d: %s", status, raw)
	}
	if got := decodeInto[EvalResponse](t, raw).Selected; !reflect.DeepEqual(got, []string{"v0", "v2"}) {
		t.Fatalf("warm-up selected %v, want [v0 v2]", got)
	}

	status, raw = postJSON(t, ts.URL+"/mutate", MutateRequest{
		Structure: pathStructure,
		Insert:    []MutateFact{{Pred: "c", Args: []string{"v1"}}},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", status, raw)
	}
	mut := decodeInto[MutateResponse](t, raw)
	if !mut.DeltaApplied || mut.Invalidated || mut.RepairFallback {
		t.Fatalf("covered insert: %+v, want a pure delta", mut)
	}
	if mut.ResultsMaintained != 1 {
		t.Fatalf("ResultsMaintained = %d, want 1", mut.ResultsMaintained)
	}

	// Re-query with the canonical post-edit text from the response.
	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: mut.Structure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("re-eval: status %d: %s", status, raw)
	}
	if got := decodeInto[EvalResponse](t, raw).Selected; !reflect.DeepEqual(got, []string{"v0", "v1", "v2"}) {
		t.Fatalf("post-edit selected %v, want [v0 v1 v2]", got)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	tot := decodeInto[StatszResponse](t, raw).SessionTotals
	if tot.Decompositions != 1 || tot.Evals != 1 || tot.Invalidations != 0 {
		t.Errorf("Decompositions=%d Evals=%d Invalidations=%d, want 1/1/0 (requery must reuse the warm session)",
			tot.Decompositions, tot.Evals, tot.Invalidations)
	}
	if tot.DeltasApplied != 1 || tot.RepairFallbacks != 0 {
		t.Errorf("DeltasApplied=%d RepairFallbacks=%d, want 1/0", tot.DeltasApplied, tot.RepairFallbacks)
	}
	if tot.ResultCacheHits < 1 {
		t.Errorf("ResultCacheHits=%d, want ≥1 (the maintained result must answer the requery)", tot.ResultCacheHits)
	}
}

// TestMutateRetraction exercises the retraction path over HTTP: the
// session absorbs the removal and the answer set shrinks.
func TestMutateRetraction(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, raw := postJSON(t, ts.URL+"/mutate", MutateRequest{
		Structure: pathStructure,
		Remove:    []MutateFact{{Pred: "c", Args: []string{"v0"}}},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", status, raw)
	}
	mut := decodeInto[MutateResponse](t, raw)
	if mut.Changes != 1 {
		t.Fatalf("Changes = %d, want 1", mut.Changes)
	}
	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: mut.Structure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("eval: status %d: %s", status, raw)
	}
	if got := decodeInto[EvalResponse](t, raw).Selected; !reflect.DeepEqual(got, []string{"v2"}) {
		t.Fatalf("selected %v, want [v2]", got)
	}
}

// TestMutateRejectsMalformed pins the 400 taxonomy: unknown predicates
// and arity mismatches fail before the session is touched.
func TestMutateRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, req := range []MutateRequest{
		{Structure: pathStructure, Insert: []MutateFact{{Pred: "nope", Args: []string{"v0"}}}},
		{Structure: pathStructure, Insert: []MutateFact{{Pred: "c", Args: []string{"v0", "v1"}}}},
		{Structure: pathStructure, Remove: []MutateFact{{Pred: "edge", Args: []string{"v0"}}}},
	} {
		status, raw := postJSON(t, ts.URL+"/mutate", req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%+v: status %d (%s), want 400", req, status, raw)
		}
	}
}

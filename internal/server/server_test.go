package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/structure"
)

// cycleStructure is a colored 4-cycle: treewidth 2. Fine for /solve
// (the solver runs on the decomposition directly) but beyond the MSO
// compiler's default type limit — /eval tests use the width-1 path or
// the width-0 flat structure instead.
const cycleStructure = `
dom v0 v1 v2 v3.
edge(v0, v1). edge(v1, v2). edge(v2, v3). edge(v3, v0).
c(v0). c(v2).
`

// pathStructure is a colored 4-path: treewidth 1, cheap to compile
// unary queries against.
const pathStructure = `
dom v0 v1 v2 v3.
edge(v0, v1). edge(v1, v2). edge(v2, v3).
c(v0). c(v2).
`

// flatStructure has no edges (treewidth 0) — cheap enough for
// quantified sentences in decision mode.
const flatStructure = `
dom v0 v1 v2 v3.
c(v0). c(v2).
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, headers map[string]string) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeInto[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return v
}

func TestEvalUnaryAndDecision(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("unary eval: status %d, body %s", status, raw)
	}
	resp := decodeInto[EvalResponse](t, raw)
	if len(resp.Selected) != 2 || resp.Selected[0] != "v0" || resp.Selected[1] != "v2" {
		t.Errorf("selected = %v, want [v0 v2]", resp.Selected)
	}
	if resp.Width != 1 {
		t.Errorf("width = %d, want 1 (a path)", resp.Width)
	}

	status, raw = postJSON(t, ts.URL+"/eval", EvalRequest{Structure: flatStructure, Formula: "exists x (c(x))"}, nil)
	if status != http.StatusOK {
		t.Fatalf("decision eval: status %d, body %s", status, raw)
	}
	resp = decodeInto[EvalResponse](t, raw)
	if resp.Holds == nil || !*resp.Holds {
		t.Errorf("holds = %v, want true", resp.Holds)
	}
}

// TestStatusTaxonomy pins the cli exit-taxonomy → HTTP mapping end to
// end: one request per class, including an armed fault injection for
// the 500.
func TestStatusTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	okReq := EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}

	t.Run("ok_200", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL+"/eval", okReq, nil)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, raw)
		}
	})
	t.Run("usage_400_bad_body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/eval", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("usage_400_bad_formula", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x) &"}, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", status, raw)
		}
	})
	t.Run("usage_400_bad_header", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL+"/eval", okReq, map[string]string{"X-Budget": "plenty"})
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", status, raw)
		}
	})
	t.Run("budget_429", func(t *testing.T) {
		// A fresh formula: the ok_200 result is cached and a cache hit
		// charges no budget.
		req := EvalRequest{Structure: pathStructure, Formula: "c(x) | c(x)", Var: "x"}
		status, raw := postJSON(t, ts.URL+"/eval", req, map[string]string{"X-Budget": "1"})
		if status != http.StatusTooManyRequests {
			t.Fatalf("status %d, body %s", status, raw)
		}
		er := decodeInto[ErrorResponse](t, raw)
		if er.Code != 3 {
			t.Errorf("taxonomy code = %d, want 3 (budget)", er.Code)
		}
	})
	t.Run("timeout_504", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL+"/eval", okReq, map[string]string{"X-Timeout": "1ns"})
		if status != http.StatusGatewayTimeout {
			t.Fatalf("status %d, body %s", status, raw)
		}
	})
	t.Run("fault_500", func(t *testing.T) {
		faultinject.FailAt("session.eval", 1)
		defer faultinject.Reset()
		// A fresh formula: cached results would answer without reaching
		// the eval stage where the fault is planted.
		status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "~c(x)", Var: "x"}, nil)
		if status != http.StatusInternalServerError {
			t.Fatalf("status %d, body %s", status, raw)
		}
		er := decodeInto[ErrorResponse](t, raw)
		if !strings.Contains(er.Error, "injected") {
			t.Errorf("error %q does not name the injected fault", er.Error)
		}
	})
	t.Run("method_405", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/eval")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
}

func TestSolveModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		req   SolveRequest
		check func(t *testing.T, resp SolveResponse)
	}{
		{SolveRequest{Structure: cycleStructure, Problem: "threecol", Mode: "decide"}, func(t *testing.T, resp SolveResponse) {
			if resp.OK == nil || !*resp.OK {
				t.Errorf("threecol decide = %v, want true (even cycle)", resp.OK)
			}
		}},
		{SolveRequest{Structure: cycleStructure, Problem: "kcolor", K: 2, Mode: "decide"}, func(t *testing.T, resp SolveResponse) {
			if resp.OK == nil || !*resp.OK {
				t.Errorf("2-color decide = %v, want true (even cycle)", resp.OK)
			}
		}},
		{SolveRequest{Structure: cycleStructure, Problem: "vcover", Mode: "optimize"}, func(t *testing.T, resp SolveResponse) {
			if resp.Value == nil || *resp.Value != 2 {
				t.Errorf("min vertex cover = %v, want 2 (C4)", resp.Value)
			}
		}},
		{SolveRequest{Structure: cycleStructure, Problem: "domset", Mode: "optimize"}, func(t *testing.T, resp SolveResponse) {
			if resp.Value == nil || *resp.Value != 2 {
				t.Errorf("min dominating set = %v, want 2 (C4)", resp.Value)
			}
		}},
		{SolveRequest{Structure: cycleStructure, Problem: "wis", Mode: "optimize"}, func(t *testing.T, resp SolveResponse) {
			if resp.Value == nil || *resp.Value != 2 {
				t.Errorf("max independent set = %v, want 2 (C4)", resp.Value)
			}
		}},
		{SolveRequest{Structure: cycleStructure, Problem: "wis", Mode: "count"}, func(t *testing.T, resp SolveResponse) {
			if resp.Count != "7" {
				t.Errorf("independent sets = %q, want 7 (C4)", resp.Count)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.req.Problem+"_"+tc.req.Mode, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL+"/solve", tc.req, nil)
			if status != http.StatusOK {
				t.Fatalf("status %d, body %s", status, raw)
			}
			tc.check(t, decodeInto[SolveResponse](t, raw))
		})
	}

	status, raw := postJSON(t, ts.URL+"/solve", SolveRequest{Structure: cycleStructure, Problem: "sat", Mode: "decide"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown problem: status %d, body %s", status, raw)
	}
}

// TestBatchSharesArtifacts pins the cache-hit accounting: k queries
// against one structure in a batch cost exactly one decomposition.
func TestBatchSharesArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	queries := []string{"c(x)", "~c(x)", "c(x) | ~c(x)", "c(x) & c(x)", "c(x) -> c(x)"}
	req := BatchRequest{Structures: []string{pathStructure}}
	for _, q := range queries {
		req.Queries = append(req.Queries, BatchQuery{Structure: 0, Formula: q, Var: "x"})
	}
	// A repeated query exercises the result cache inside one batch.
	req.Queries = append(req.Queries, BatchQuery{Structure: 0, Formula: "c(x)", Var: "x"})

	status, raw := postJSON(t, ts.URL+"/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decodeInto[BatchResponse](t, raw)
	if len(resp.Results) != len(queries)+1 {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(queries)+1)
	}
	for i, res := range resp.Results {
		if res.Status != http.StatusOK {
			t.Errorf("query %d: status %d (%s)", i, res.Status, res.Error)
		}
	}
	if len(resp.Structures) != 1 {
		t.Fatalf("got %d structure stats, want 1", len(resp.Structures))
	}
	stat := resp.Structures[0]
	if stat.Decompositions != 1 {
		t.Errorf("Decompositions = %d, want 1 for %d queries on one structure", stat.Decompositions, len(req.Queries))
	}
	if stat.Evals != len(queries) {
		t.Errorf("Evals = %d, want %d", stat.Evals, len(queries))
	}
	if stat.ResultCacheHits != 1 {
		t.Errorf("ResultCacheHits = %d, want 1 (the repeated query)", stat.ResultCacheHits)
	}

	// Per-query failures don't fail the batch.
	req.Queries[2].Formula = "c(x) &"
	status, raw = postJSON(t, ts.URL+"/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("batch with one bad query: status %d, body %s", status, raw)
	}
	resp = decodeInto[BatchResponse](t, raw)
	if resp.Results[2].Status != http.StatusBadRequest {
		t.Errorf("bad query status = %d, want 400", resp.Results[2].Status)
	}
	if resp.Results[3].Status != http.StatusOK {
		t.Errorf("query after bad one: status = %d, want 200", resp.Results[3].Status)
	}
}

// TestConcurrentSameStructure drives many concurrent clients at one
// structure; the session layer's single-flight must keep the artifact
// counters at one each, with zero errors.
func TestConcurrentSameStructure(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
			if status != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", status, raw)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	s.mu.Lock()
	nSessions := len(s.sessions)
	s.mu.Unlock()
	if nSessions != 1 {
		t.Errorf("sessions = %d, want 1 (one fingerprint)", nSessions)
	}
	status, raw := postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	if status != http.StatusOK {
		t.Fatalf("warm follow-up: status %d, body %s", status, raw)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	stats := decodeInto[StatszResponse](t, raw)
	if stats.SessionTotals.Decompositions != 1 {
		t.Errorf("Decompositions = %d, want 1 across %d concurrent clients", stats.SessionTotals.Decompositions, clients)
	}
	if stats.SessionTotals.Evals != 1 {
		t.Errorf("Evals = %d, want 1 (one shared evaluation)", stats.SessionTotals.Evals)
	}
	if stats.SessionTotals.ResultCacheHits != clients {
		t.Errorf("ResultCacheHits = %d, want %d", stats.SessionTotals.ResultCacheHits, clients)
	}
}

// TestSessionRegistryBounded floods the registry with 10k distinct
// structures and asserts the FIFO cap holds.
func TestSessionRegistryBounded(t *testing.T) {
	s := New(Config{MaxSessions: 8})
	for i := 0; i < 10000; i++ {
		st, err := structure.Parse(fmt.Sprintf("dom e%d.", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		s.sessionFor(st)
	}
	s.mu.Lock()
	n, order, evicted := len(s.sessions), len(s.order), s.evictions
	s.mu.Unlock()
	if n != 8 || order != 8 {
		t.Errorf("registry holds %d sessions (%d in order), cap 8", n, order)
	}
	if evicted != 10000-8 {
		t.Errorf("evictions = %d, want %d", evicted, 10000-8)
	}
	// A resident structure is still served from the registry.
	st, err := structure.Parse("dom e9999.", nil)
	if err != nil {
		t.Fatal(err)
	}
	before := s.sessionFor(st)
	if again := s.sessionFor(st); again != before {
		t.Error("resident fingerprint re-created its session")
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	postJSON(t, ts.URL+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x) &"}, nil)

	r2, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	stats := decodeInto[StatszResponse](t, raw)
	if stats.StatusCounts["200"] < 2 || stats.StatusCounts["400"] != 1 {
		t.Errorf("status counts = %v, want ≥2×200 and 1×400", stats.StatusCounts)
	}
	if stats.Sessions != 1 || stats.SessionCap != DefaultMaxSessions {
		t.Errorf("sessions %d/%d, want 1/%d", stats.Sessions, stats.SessionCap, DefaultMaxSessions)
	}
	if stats.ProgramCache.Cap == 0 {
		t.Error("program cache cap missing from statsz")
	}
}

// TestGracefulDrain pins the shutdown contract: a request in flight
// when shutdown begins completes with 200, then the listener refuses
// new connections and Run returns nil.
func TestGracefulDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	s.testGate = func(context.Context, string) {
		gateOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, l, s, 10*time.Second) }()

	url := "http://" + l.Addr().String()
	reqDone := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(reqDone)
		status, body = postJSON(t, url+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	}()

	<-entered
	cancel() // begin shutdown while the request is gated in flight
	// Shutdown must wait for the in-flight request, not abort it.
	select {
	case <-reqDone:
		t.Fatal("request finished before the gate released")
	case <-runDone:
		t.Fatal("Run returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	<-reqDone
	if status != http.StatusOK {
		t.Fatalf("drained request: status %d, body %s", status, body)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestDrainGraceAborts pins the other half of the contract: a request
// that outlives the grace is aborted through context cancellation
// rather than abandoned, and Run still returns.
func TestDrainGraceAborts(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	entered := make(chan struct{})
	var gateOnce sync.Once
	// Gate on the request context itself: the handler stays in flight
	// until the expired grace cancels the base context, then evaluates
	// against the canceled context and answers 504 — a deterministic
	// stand-in for an evaluation too slow for the grace.
	s.testGate = func(ctx context.Context, _ string) {
		gateOnce.Do(func() {
			close(entered)
			<-ctx.Done()
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, l, s, 100*time.Millisecond) }()

	url := "http://" + l.Addr().String()
	reqDone := make(chan struct{})
	var status int
	go func() {
		defer close(reqDone)
		status, _ = postJSON(t, url+"/eval", EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}, nil)
	}()

	<-entered
	cancel()
	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after grace expiry")
	}
	if runErr == nil {
		t.Error("Run = nil, want a drain error (request outlived the grace)")
	}
	select {
	case <-reqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("aborted request never completed")
	}
	// The request context was canceled after the grace: the evaluation
	// aborts through the context plumbing and answers 504.
	if status != http.StatusGatewayTimeout {
		t.Errorf("aborted request status = %d, want 504", status)
	}
}

// TestBackendSelection pins the backend plumbing at the HTTP layer:
// X-Backend steers /eval and /batch, Config.Backend sets the default,
// unknown names are usage errors, and /statsz reports both the
// per-backend request counts and the sessions' per-backend evals.
func TestBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	okReq := EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}

	status, raw := postJSON(t, ts.URL+"/eval", okReq, nil)
	if status != http.StatusOK {
		t.Fatalf("automaton eval: status %d, body %s", status, raw)
	}
	want := decodeInto[EvalResponse](t, raw)

	status, raw = postJSON(t, ts.URL+"/eval", okReq, map[string]string{"X-Backend": "game"})
	if status != http.StatusOK {
		t.Fatalf("game eval: status %d, body %s", status, raw)
	}
	got := decodeInto[EvalResponse](t, raw)
	if fmt.Sprint(got.Selected) != fmt.Sprint(want.Selected) {
		t.Errorf("game selected %v, automaton selected %v", got.Selected, want.Selected)
	}

	status, raw = postJSON(t, ts.URL+"/eval", okReq, map[string]string{"X-Backend": "quantum"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d, body %s", status, raw)
	}

	breq := BatchRequest{
		Structures: []string{pathStructure},
		Queries:    []BatchQuery{{Structure: 0, Formula: "~c(x)", Var: "x"}},
	}
	status, raw = postJSON(t, ts.URL+"/batch", breq, map[string]string{"X-Backend": "game"})
	if status != http.StatusOK {
		t.Fatalf("game batch: status %d, body %s", status, raw)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	stats := decodeInto[StatszResponse](t, raw)
	if stats.Backends["automaton"] != 1 || stats.Backends["game"] != 2 {
		t.Errorf("backend request counts = %v, want automaton:1 game:2 (the 400 is not admitted)", stats.Backends)
	}
	by := stats.SessionTotals.EvalsByBackend
	if by["automaton"] != 1 || by["game"] != 2 {
		t.Errorf("EvalsByBackend = %v, want automaton:1 game:2", by)
	}
}

// TestBackendConfigDefault pins that Config.Backend changes the default
// for requests without an X-Backend header, is validated at request
// time, and is still overridable per request.
func TestBackendConfigDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{Backend: "game"})
	okReq := EvalRequest{Structure: pathStructure, Formula: "c(x)", Var: "x"}

	status, raw := postJSON(t, ts.URL+"/eval", okReq, nil)
	if status != http.StatusOK {
		t.Fatalf("default-game eval: status %d, body %s", status, raw)
	}
	status, raw = postJSON(t, ts.URL+"/eval", okReq, map[string]string{"X-Backend": "automaton"})
	if status != http.StatusOK {
		t.Fatalf("override to automaton: status %d, body %s", status, raw)
	}
	s.mu.Lock()
	gameReqs, autoReqs := s.backendReqs["game"], s.backendReqs["automaton"]
	s.mu.Unlock()
	if gameReqs != 1 || autoReqs != 1 {
		t.Errorf("backendReqs = game:%d automaton:%d, want 1 and 1", gameReqs, autoReqs)
	}
}

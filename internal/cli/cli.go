// Package cli centralizes what every cmd/* tool needs to fail well: a
// shared exit-code taxonomy, one-line stage-tagged error rendering
// (never a stack trace), resource-budget and deadline plumbing, and
// fault-injection arming from the FAULTINJECT environment variable.
//
// Exit codes:
//
//	0  success
//	1  generic error (bad input, invalid data, internal error)
//	2  usage error (flag parsing; emitted by the tools themselves)
//	3  resource budget exceeded (-budget, mso step budget)
//	4  deadline or cancellation (-timeout)
//	5  recovered panic (a bug — the one-line message names the stage)
//	6  overloaded (admission shed or circuit breaker open; retryable)
package cli

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/overload"
	"repro/internal/stage"
)

// Exit codes shared by all cmd/* tools.
const (
	ExitOK       = 0
	ExitError    = 1
	ExitUsage    = 2
	ExitBudget   = 3
	ExitTimeout  = 4
	ExitPanic    = 5
	ExitOverload = 6
)

// ErrUsage marks malformed input from the caller — bad flags, an
// unparseable request body, an invalid formula or structure. Wrap bad
// input with it (fmt.Errorf("%w: ...", cli.ErrUsage)) so ExitCode
// classifies it as ExitUsage and HTTPStatus as 400 rather than a
// generic internal error.
var ErrUsage = errors.New("usage error")

// ExitCode classifies err into the taxonomy above. Stage tags do not
// affect the class, only the message.
func ExitCode(err error) int {
	var pe *stage.PanicError
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, &pe):
		return ExitPanic
	case errors.Is(err, ErrUsage):
		return ExitUsage
	case errors.Is(err, overload.ErrShed), errors.Is(err, overload.ErrBreakerOpen):
		return ExitOverload
	case errors.Is(err, stage.ErrBudgetExceeded):
		return ExitBudget
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ExitTimeout
	default:
		return ExitError
	}
}

// HTTPStatus maps err's taxonomy class onto the HTTP status code the
// decision service (cmd/monadicd) answers with:
//
//	ok       → 200
//	usage    → 400 (bad request body, formula or structure)
//	budget   → 429 (per-request resource budget exceeded)
//	overload → 429 (admission shed) or 503 (circuit breaker open);
//	           both carry Retry-After, see RetryAfter
//	timeout  → 504 (per-request deadline or client cancellation)
//	panic    → 500 (a bug; the one-line message names the stage)
//	error    → 500 (any other pipeline failure)
func HTTPStatus(err error) int {
	switch ExitCode(err) {
	case ExitOK:
		return http.StatusOK
	case ExitUsage:
		return http.StatusBadRequest
	case ExitBudget:
		return http.StatusTooManyRequests
	case ExitOverload:
		if errors.Is(err, overload.ErrBreakerOpen) {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case ExitTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfter extracts the Retry-After hint an overload error carries
// (admission shed, breaker fast-fail): the duration the server
// estimates until capacity frees up, or 0 when err carries none. The
// server turns a nonzero hint into a Retry-After header on the 429/503
// answer; the internal/client retry loop honors it over its own
// backoff.
func RetryAfter(err error) time.Duration {
	var hinted interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &hinted) {
		return hinted.RetryAfterHint()
	}
	return 0
}

// Message renders err as a single line prefixed with the tool name and,
// when the error carries one, its pipeline stage. Panic stacks are
// dropped: users get "panic in stage X: v", debuggers can re-run with
// the fault plan or a debugger attached.
func Message(tool string, err error) string {
	s := stage.Of(err)
	var pe *stage.PanicError
	if errors.As(err, &pe) {
		if s != "" {
			return fmt.Sprintf("%s: [%s] internal error: recovered panic: %v", tool, s, pe.Value)
		}
		return fmt.Sprintf("%s: internal error: recovered panic: %v", tool, pe.Value)
	}
	msg := err.Error()
	if s != "" {
		// stage.Error renders as "stage X: ..."; reshape to "[X] ...".
		msg = strings.TrimPrefix(msg, fmt.Sprintf("stage %s: ", s))
		return fmt.Sprintf("%s: [%s] %s", tool, s, firstLine(msg))
	}
	return fmt.Sprintf("%s: %s", tool, firstLine(msg))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Fail prints the one-line message for err to stderr and exits with
// its taxonomy code. It must only be called after flag parsing.
func Fail(tool string, err error) {
	fmt.Fprintln(os.Stderr, Message(tool, err))
	os.Exit(ExitCode(err))
}

// Init arms fault injection from the FAULTINJECT environment variable
// (see faultinject.InitFromSpec) and returns a usage-style error for a
// malformed spec. Tools call it once, before doing work.
func Init() error {
	return faultinject.InitFromSpec(os.Getenv("FAULTINJECT"))
}

// Backend resolves an evaluation backend name against the core registry
// ("" = the default automaton pipeline), wrapping unknown names in
// ErrUsage so ExitCode classifies them as ExitUsage. Backends register
// from package init — a tool selecting a non-default backend must link
// its package (cmd tools get internal/backend/game via internal/session,
// or blank-import it directly).
func Backend(name string) (core.Backend, error) {
	b, err := core.BackendByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUsage, err)
	}
	return b, nil
}

// Context builds the tool's root context: a deadline from timeout (0 =
// none) and a uniform resource budget of n for each metered dimension
// (0 = unlimited), attached via the stage budget plumbing. The cancel
// func must be deferred.
func Context(timeout time.Duration, n int64) (context.Context, context.CancelFunc) {
	b := stage.Uniform(n)
	if timeout > 0 {
		if b == nil {
			b = &stage.Budget{}
		}
		b.Deadline = time.Now().Add(timeout)
	}
	return stage.ApplyDeadline(context.Background(), b)
}

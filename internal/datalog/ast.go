// Package datalog implements a datalog engine: abstract syntax, a parser,
// stratified semipositive evaluation by semi-naive bottom-up iteration,
// and the linear-time evaluation of quasi-guarded programs of Theorem 4.4
// (guard-driven grounding followed by unit resolution over the ground
// Horn program).
//
// Monadic datalog — all intensional predicates unary — is the fragment the
// paper targets (Definition 4.1); the engine accepts arbitrary arities and
// provides IsMonadic to check the restriction.
package datalog

import (
	"fmt"
	"strings"
)

// Term is a variable or a constant. Exactly one of Var/Const is set.
type Term struct {
	Var   string
	Const string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(name string) Term { return Term{Const: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const
}

// Atom is a (possibly negated) predicate applied to terms. Negation may
// only occur in rule bodies.
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
}

// NewAtom builds a positive atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Not returns the negated version of the atom.
func (a Atom) Not() Atom {
	a.Negated = true
	return a
}

func (a Atom) String() string {
	var b strings.Builder
	if a.Negated {
		b.WriteString("not ")
	}
	b.WriteString(a.Pred)
	if len(a.Args) > 0 {
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Vars appends the variables of the atom to dst (with duplicates).
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// Rule is a Horn rule Head ← Body. An empty body makes the rule a fact
// (its head must then be ground).
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

// Add appends a rule.
func (p *Program) Add(head Atom, body ...Atom) {
	p.Rules = append(p.Rules, Rule{Head: head, Body: body})
}

// AddFact appends a ground fact.
func (p *Program) AddFact(pred string, consts ...string) {
	args := make([]Term, len(consts))
	for i, c := range consts {
		args[i] = C(c)
	}
	p.Add(NewAtom(pred, args...))
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IntensionalPreds returns the set of predicates occurring in some head.
func (p *Program) IntensionalPreds() map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// IsMonadic reports whether every intensional predicate is unary or 0-ary
// (the paper also relies on 0-ary goal predicates for decision problems).
func (p *Program) IsMonadic() bool {
	intens := p.IntensionalPreds()
	check := func(a Atom) bool {
		return !intens[a.Pred] || len(a.Args) <= 1
	}
	for _, r := range p.Rules {
		if !check(r.Head) {
			return false
		}
		for _, a := range r.Body {
			if !check(a) {
				return false
			}
		}
	}
	return true
}

// Validate checks arity consistency and safety: every head variable and
// every variable of a negated or builtin atom must occur in some positive
// non-builtin body atom.
func (p *Program) Validate() error {
	arity := map[string]int{}
	seen := func(a Atom, where string, ri int) error {
		if got, ok := arity[a.Pred]; ok {
			if got != len(a.Args) {
				return fmt.Errorf("datalog: rule %d: predicate %s used with arity %d and %d", ri, a.Pred, got, len(a.Args))
			}
		} else {
			arity[a.Pred] = len(a.Args)
		}
		_ = where
		return nil
	}
	for ri, r := range p.Rules {
		if r.Head.Negated {
			return fmt.Errorf("datalog: rule %d: negated head", ri)
		}
		if err := seen(r.Head, "head", ri); err != nil {
			return err
		}
		positive := map[string]bool{}
		for _, a := range r.Body {
			if err := seen(a, "body", ri); err != nil {
				return err
			}
			if !a.Negated && !IsBuiltin(a.Pred) {
				for _, t := range a.Args {
					if t.IsVar() {
						positive[t.Var] = true
					}
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar() && !positive[t.Var] {
				return fmt.Errorf("datalog: rule %d: unsafe head variable %s", ri, t.Var)
			}
		}
		for _, a := range r.Body {
			if !a.Negated && !IsBuiltin(a.Pred) {
				continue
			}
			for _, t := range a.Args {
				if t.IsVar() && !positive[t.Var] {
					return fmt.Errorf("datalog: rule %d: unsafe variable %s in %s", ri, t.Var, a)
				}
			}
		}
	}
	return nil
}

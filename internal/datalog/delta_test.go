package datalog

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// edbFromFacts builds an extensional database from a fact list.
func edbFromFacts(facts []Fact) *DB {
	db := NewDB()
	for _, f := range facts {
		db.AddFact(f.Pred, f.Args...)
	}
	return db
}

// TestApplyDeltaDifferential holds incremental maintenance to the cold
// engine on randomized stratified programs: after a batch of random
// insert/retract edits, the maintained fixpoint must equal a cold Eval
// of the edited EDB, under both engines. Programs outside the supported
// fragment (negation over intensional predicates) must return the
// ErrDeltaUnsupported sentinel without touching the database.
func TestApplyDeltaDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	consts := []string{"a", "b", "c", "d", "f"}
	randFact := func() Fact {
		if rng.Intn(3) == 0 {
			return Fact{Pred: "n", Args: []string{consts[rng.Intn(len(consts))]}}
		}
		return Fact{Pred: "e", Args: []string{consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]}}
	}
	defer SetEngine(SetEngine(EngineStreaming))
	tried, run, unsupported := 0, 0, 0
	for run < 200 && tried < 2500 {
		tried++
		p := randStratifiedProgram(rng)
		if p == nil || p.Validate() != nil {
			continue
		}
		run++
		var facts []Fact
		for i := 0; i < 10; i++ {
			facts = append(facts, randFact())
		}
		// Random edit batch: deletions of present facts, fresh insertions.
		var ins, del []Fact
		for i := 0; i < 1+rng.Intn(4); i++ {
			if len(facts) > 0 && rng.Intn(2) == 0 {
				del = append(del, facts[rng.Intn(len(facts))])
			} else {
				ins = append(ins, randFact())
			}
		}
		after := append([]Fact(nil), ins...)
		for _, f := range facts {
			dead := false
			for _, d := range del {
				if f.Pred == d.Pred && fmt.Sprint(f.Args) == fmt.Sprint(d.Args) {
					dead = true
					break
				}
			}
			if !dead {
				after = append(after, f)
			}
		}
		for _, eng := range []Engine{EngineStreaming, EngineMaterialized} {
			SetEngine(eng)
			inc, err := Eval(p, edbFromFacts(facts))
			if err != nil {
				continue
			}
			want, coldErr := Eval(p, edbFromFacts(after))
			_, derr := ApplyDelta(p, inc, ins, del)
			if errors.Is(derr, ErrDeltaUnsupported) {
				unsupported++
				continue
			}
			if derr != nil || coldErr != nil {
				t.Fatalf("program #%d %v: delta err %v, cold err %v", run, p, derr, coldErr)
			}
			sameFacts(t, inc, want, fmt.Sprintf("program #%d engine=%s ins=%v del=%v %v", run, eng, ins, del, p))
		}
	}
	if run < 100 {
		t.Fatalf("generator too weak: only %d/%d candidates were valid programs", run, tried)
	}
	t.Logf("%d programs, %d unsupported (negated IDB) fell back", run, unsupported)
}

// TestApplyDeltaEditSequence maintains classic recursive programs through
// a 50-edit random insert/retract sequence, comparing the maintained
// database to a cold evaluation after every single edit — the
// datalog-layer half of the mutation differential suite.
func TestApplyDeltaEditSequence(t *testing.T) {
	progs := []string{
		"path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
		"sg(X, X) :- n(X).\nsg(X, Y) :- e(X, XP), sg(XP, YP), e(Y, YP).",
		"odd(Y) :- n(X), e(X, Y), not n(Y).\nreach(X) :- odd(X).\nreach(Y) :- reach(X), e(X, Y).",
	}
	defer SetEngine(SetEngine(EngineStreaming))
	for pi, src := range progs {
		p := MustParse(src)
		rng := rand.New(rand.NewSource(int64(100 + pi)))
		names := make([]string, 10)
		for i := range names {
			names[i] = "v" + strconv.Itoa(i)
		}
		randFact := func() Fact {
			if rng.Intn(3) == 0 {
				return Fact{Pred: "n", Args: []string{names[rng.Intn(len(names))]}}
			}
			return Fact{Pred: "e", Args: []string{names[rng.Intn(len(names))], names[rng.Intn(len(names))]}}
		}
		var facts []Fact
		for i := 0; i < 12; i++ {
			facts = append(facts, randFact())
		}
		for _, eng := range []Engine{EngineStreaming, EngineMaterialized} {
			SetEngine(eng)
			cur := append([]Fact(nil), facts...)
			inc, err := Eval(p, edbFromFacts(cur))
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 50; step++ {
				var ins, del []Fact
				if len(cur) > 0 && rng.Intn(2) == 0 {
					f := cur[rng.Intn(len(cur))]
					del = append(del, f)
					live := cur[:0] // the DB dedups, so retract every copy
					for _, g := range cur {
						if g.Pred != f.Pred || fmt.Sprint(g.Args) != fmt.Sprint(f.Args) {
							live = append(live, g)
						}
					}
					cur = live
				} else {
					f := randFact()
					ins = append(ins, f)
					cur = append(cur, f)
				}
				if _, err := ApplyDelta(p, inc, ins, del); err != nil {
					t.Fatalf("prog %d engine=%s step %d: %v", pi, eng, step, err)
				}
				want, err := Eval(p, edbFromFacts(cur))
				if err != nil {
					t.Fatal(err)
				}
				sameFacts(t, inc, want, fmt.Sprintf("prog %d engine=%s step %d ins=%v del=%v", pi, eng, step, ins, del))
			}
		}
	}
}

// TestApplyDeltaUnsupported pins the fallback contract: negation over an
// intensional predicate and edits targeting intensional predicates both
// return ErrDeltaUnsupported with the database untouched.
func TestApplyDeltaUnsupported(t *testing.T) {
	p := MustParse("odd(Y) :- n(X), e(X, Y), not n(Y).\nbad(X) :- n(X), not odd(X).")
	db := NewDB()
	db.AddFact("n", "a")
	db.AddFact("e", "a", "b")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	before := fmt.Sprint(out.Tuples("bad"), out.Tuples("odd"))
	if _, err := ApplyDelta(p, out, []Fact{{Pred: "n", Args: []string{"b"}}}, nil); !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf("negated IDB: got %v, want ErrDeltaUnsupported", err)
	}
	if got := fmt.Sprint(out.Tuples("bad"), out.Tuples("odd")); got != before {
		t.Fatalf("db mutated on unsupported program: %s vs %s", got, before)
	}

	p2 := MustParse("path(X, Y) :- e(X, Y).")
	db2 := NewDB()
	db2.AddFact("e", "a", "b")
	out2, err := Eval(p2, db2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(p2, out2, []Fact{{Pred: "path", Args: []string{"a", "c"}}}, nil); !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf("intensional edit: got %v, want ErrDeltaUnsupported", err)
	}
}

package datalog

import (
	"context"
	"sync/atomic"
)

// Engine selects the rule-evaluation backend.
type Engine int32

const (
	// EngineStreaming (the default) evaluates rule bodies through the
	// pull-based relational-algebra pipeline of internal/datalog/ra:
	// plans with predicate/constant pushdown into index probes,
	// constant-space projection, and O(1) rows in flight per rule.
	EngineStreaming Engine = iota
	// EngineMaterialized is the pre-streaming backend: a recursive
	// backtracking join that copies index matches into per-binding
	// buffers. Kept selectable for the naive-reference differential
	// suite and interleaved A/B benchmarks.
	EngineMaterialized
)

func (e Engine) String() string {
	if e == EngineMaterialized {
		return "materialized"
	}
	return "streaming"
}

var engine atomic.Int32 // Engine, zero value = EngineStreaming

// SetEngine selects the rule-evaluation backend for subsequent Eval
// calls and returns the previous setting. Evaluations capture the
// engine once at entry, so a concurrent switch never splits one run
// across backends.
func SetEngine(e Engine) Engine { return Engine(engine.Swap(int32(e))) }

// CurrentEngine reports the selected rule-evaluation backend.
func CurrentEngine() Engine { return Engine(engine.Load()) }

// EngineStats are the streaming engine's cumulative counters: the row
// volume moved through operator pipelines, the number of joins planned
// with probe constraints pushed into relation indexes, and the
// high-water mark of tuples buffered at once (symmetric hash joins plus the
// parallel rounds' pending merge buffers — the quantity the streaming
// rebuild minimizes).
type EngineStats struct {
	TuplesStreamed     int64 `json:"tuples_streamed"`
	JoinsPushedDown    int64 `json:"joins_pushed_down"`
	PeakBufferedTuples int64 `json:"peak_buffered_tuples"`
}

var (
	gTuplesStreamed  atomic.Int64
	gJoinsPushedDown atomic.Int64
	gPeakBuffered    atomic.Int64
)

// ReadEngineStats returns the process-wide streaming-engine counters.
func ReadEngineStats() EngineStats {
	return EngineStats{
		TuplesStreamed:     gTuplesStreamed.Load(),
		JoinsPushedDown:    gJoinsPushedDown.Load(),
		PeakBufferedTuples: gPeakBuffered.Load(),
	}
}

// StatsCollector accumulates streaming-engine counters for one consumer
// (a session, a server) on top of the process-wide totals. Attach one
// to a context with WithStatsCollector; evaluations running under that
// context add their traffic to it. Safe for concurrent use.
type StatsCollector struct {
	tuples atomic.Int64
	joins  atomic.Int64
	peak   atomic.Int64
}

// Snapshot returns the collector's counters.
func (c *StatsCollector) Snapshot() EngineStats {
	if c == nil {
		return EngineStats{}
	}
	return EngineStats{
		TuplesStreamed:     c.tuples.Load(),
		JoinsPushedDown:    c.joins.Load(),
		PeakBufferedTuples: c.peak.Load(),
	}
}

// collectorKey carries a *StatsCollector through a context.
type collectorKey struct{}

// WithStatsCollector attaches a collector to the context so evaluations
// under it report their streaming-engine traffic. A nil c returns ctx
// unchanged.
func WithStatsCollector(ctx context.Context, c *StatsCollector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey{}, c)
}

func statsCollectorFrom(ctx context.Context) *StatsCollector {
	c, _ := ctx.Value(collectorKey{}).(*StatsCollector)
	return c
}

func addTuplesStreamed(c *StatsCollector, n int64) {
	if n == 0 {
		return
	}
	gTuplesStreamed.Add(n)
	if c != nil {
		c.tuples.Add(n)
	}
}

func addJoinsPushedDown(c *StatsCollector, n int64) {
	if n == 0 {
		return
	}
	gJoinsPushedDown.Add(n)
	if c != nil {
		c.joins.Add(n)
	}
}

func maxInto(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func notePeakBuffered(c *StatsCollector, peak int64) {
	if peak == 0 {
		return
	}
	maxInto(&gPeakBuffered, peak)
	if c != nil {
		maxInto(&c.peak, peak)
	}
}

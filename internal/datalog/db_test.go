package datalog

import (
	"reflect"
	"testing"
)

// TestMatchResultNoAliasing is the regression test for the seed bug where
// match leaked aliases to caller or internal state: the fully-bound case
// returned the caller's own pattern slice, and the zero-bound case
// returned the relation's tuple list itself, so mutating either result
// corrupted the other side. The contract now is: the outer slice is
// caller-owned (never the pattern, never internal storage); only the
// inner tuples are shared and read-only.
func TestMatchResultNoAliasing(t *testing.T) {
	db := NewDB()
	db.AddFact("e", "a", "b")
	db.AddFact("e", "b", "c")
	db.AddFact("e", "a", "c")
	r := db.rels["e"]
	a, b := db.Intern("a"), db.Intern("b")

	// Fully bound: the result must not alias the pattern slice.
	pattern := []int{a, b}
	res := r.match(pattern, nil)
	if len(res) != 1 {
		t.Fatalf("fully-bound match returned %d tuples, want 1", len(res))
	}
	pattern[0], pattern[1] = -7, -7 // caller reuses its pattern buffer
	if res[0][0] != a || res[0][1] != b {
		t.Fatalf("match result changed when the caller's pattern was reused: %v", res[0])
	}

	// Zero bound: the outer slice must not alias r.tuples — appending to
	// and overwriting the result must leave the relation intact.
	all := r.match([]int{-1, -1}, nil)
	if len(all) != 3 {
		t.Fatalf("zero-bound match returned %d tuples, want 3", len(all))
	}
	junk := []int{-9, -9}
	for i := range all {
		all[i] = junk
	}
	_ = append(all[:0], junk, junk, junk, junk)
	if db.Count("e") != 3 || !db.Has("e", "a", "b") || !db.Has("e", "b", "c") || !db.Has("e", "a", "c") {
		t.Fatal("mutating a zero-bound match result corrupted the relation")
	}

	// Partially bound (index path): same ownership rules.
	byFirst := r.match([]int{a, -1}, nil)
	if len(byFirst) != 2 {
		t.Fatalf("partial match returned %d tuples, want 2", len(byFirst))
	}
	for i := range byFirst {
		byFirst[i] = junk
	}
	if got := r.match([]int{a, -1}, nil); len(got) != 2 || got[0][0] != a {
		t.Fatal("mutating a partial match result corrupted the index")
	}
}

// TestInsertKeepsLiveIndexes pins the tentpole guarantee: once a
// bound-position index exists, further inserts update it in place rather
// than discarding it, so the build counter stays flat while the index
// keeps answering correctly. (The seed rebuilt from scratch after every
// insert, giving Ω(rounds·|A|) behavior in semi-naive loops.)
func TestInsertKeepsLiveIndexes(t *testing.T) {
	db := NewDB()
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = db.Intern(string(rune('A' + i%26)))
	}
	db.AddTuple("e", []int{ids[0], ids[1]})
	r := db.rels["e"]

	if got := r.match([]int{ids[0], -1}, nil); len(got) != 1 {
		t.Fatalf("initial match: %d tuples, want 1", len(got))
	}
	if got := db.IndexBuilds("e"); got != 1 {
		t.Fatalf("IndexBuilds = %d after first indexed match, want 1", got)
	}

	for i := 1; i < 60; i++ {
		db.AddTuple("e", []int{ids[0], db.Intern("fresh" + string(rune('0'+i%10)) + string(rune('a'+i%26)))})
		want := i + 1
		if got := len(r.match([]int{ids[0], -1}, nil)); got != want {
			t.Fatalf("after %d inserts: match returned %d tuples, want %d", i, got, want)
		}
	}
	if got := db.IndexBuilds("e"); got != 1 {
		t.Fatalf("IndexBuilds = %d after 59 inserts, want 1 (insert must maintain live indexes in place)", got)
	}
}

// TestCloneIndependent checks that Clone (now a flat copy with no
// per-tuple re-hashing) still yields a fully independent database with
// working deduplication.
func TestCloneIndependent(t *testing.T) {
	db := NewDB()
	db.AddFact("e", "a", "b")
	db.AddFact("n", "a")

	c := db.Clone()
	if !reflect.DeepEqual(c.Tuples("e"), db.Tuples("e")) || c.Count("n") != 1 {
		t.Fatal("clone lost facts")
	}
	if c.AddFact("e", "a", "b") {
		t.Fatal("clone dedup table broken: duplicate insert reported as new")
	}
	if !c.AddFact("e", "b", "c") || c.Count("e") != 2 {
		t.Fatal("clone rejects genuinely new facts")
	}
	if db.Count("e") != 1 || db.Has("e", "b", "c") {
		t.Fatal("mutating the clone changed the original")
	}
	if !db.AddFact("e", "x", "y") || c.Has("e", "x", "y") {
		t.Fatal("mutating the original changed the clone")
	}
	// Interning stays independent too.
	c.Intern("cloneonly")
	if _, ok := db.byName["cloneonly"]; ok {
		t.Fatal("clone shares the interning table with the original")
	}
}

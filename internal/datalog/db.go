package datalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/datalog/ra"
	"repro/internal/structure"
)

// DB stores relations over interned constants: the extensional database
// the engine evaluates against, and — after evaluation — the computed
// intensional relations.
type DB struct {
	names  []string
	byName map[string]int
	rels   map[string]*relation

	// deltaIx caches ApplyDelta's scheduling index (stratification,
	// consumer indexes, compiled rules) across calls against this
	// database; it is keyed by program identity and engine inside
	// ApplyDeltaCtx and never survives Clone.
	deltaIx *deltaIndex
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{byName: map[string]int{}, rels: map[string]*relation{}}
}

// Tuples are hashed with FNV-1a folding whole words per element; equality
// is verified element-wise on probe, so hash quality only affects speed,
// never correctness.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashTuple(tuple []int) uint64 {
	h := fnvOffset64
	for _, v := range tuple {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	return h
}

func hashProj(tuple []int, positions []int) uint64 {
	h := fnvOffset64
	for _, p := range positions {
		h ^= uint64(tuple[p])
		h *= fnvPrime64
	}
	return h
}

func equalTuple(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// index accelerates match for one set of bound positions. Buckets hold
// indices into relation.tuples in insertion order, so match results are
// always emitted in insertion order regardless of which index serves them.
type index struct {
	positions []int  // the indexed (bound) positions, ascending
	mask      uint64 // bitmask of positions
	buckets   map[uint64][]int32
}

// maxReuseBucket is the selectivity threshold for answering a match from
// an existing index on a subset of the bound positions (with residual
// filtering) instead of building a dedicated index: reuse only while the
// average bucket holds at most this many tuples.
const maxReuseBucket = 4

// relation stores the tuples of one predicate.
//
// Dedup uses an open-addressed probe table (slots) instead of a Go map:
// a slot holds tupleIndex+1 (0 = empty) and collisions resolve by linear
// probing with element-wise equality checks, so insertion performs no
// per-entry allocation.
//
// Concurrency: match and has may be called from many goroutines during a
// parallel evaluation round, during which no inserts happen (derivations
// are buffered and merged serially between rounds — the WaitGroup
// barrier orders the phases). The only cross-goroutine mutation is the
// lazy construction of match indexes, which mu guards; tuples, slots and
// existing index buckets are immutable while readers are active.
type relation struct {
	arity  int
	dedup  bool // delta relations skip dedup: their tuples are pre-deduplicated
	tuples [][]int
	slots  []int32 // open-addressed dedup table; nil until first insert

	mu      sync.RWMutex
	indexes map[uint64]*index // bound-position mask → serving index (may alias a subset index)
	live    []*index          // distinct indexes maintained incrementally by insert
	builds  int               // full index constructions (inserts never reset indexes)
}

func newRelation(arity int) *relation {
	return &relation{arity: arity, dedup: true, indexes: map[uint64]*index{}}
}

// newDeltaRelation returns a relation for semi-naive deltas: appendShared
// adds pre-deduplicated tuples with no hashing, copying, or probing.
func newDeltaRelation(arity int) *relation {
	return &relation{arity: arity, indexes: map[uint64]*index{}}
}

// grow (re)builds the probe table at double capacity.
func (r *relation) grow() {
	n := 2 * len(r.slots)
	if n < 16 {
		n = 16
	}
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for ti, t := range r.tuples {
		i := hashTuple(t) & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(ti + 1)
	}
	r.slots = slots
}

// insert adds a tuple (copied); reports whether it was new. Live indexes
// are maintained incrementally — an insert never invalidates them.
func (r *relation) insert(tuple []int) bool {
	return r.add(tuple, true)
}

// insertOwned is insert for a tuple the caller relinquishes: on success
// the relation adopts the slice instead of copying it. The tuple must not
// be mutated afterwards.
func (r *relation) insertOwned(tuple []int) bool {
	return r.add(tuple, false)
}

// insertRow is insert for a row the caller keeps reusing (a streaming
// operator's output buffer): only a genuinely new tuple is copied, and
// the stored copy is returned so the delta relation can share it.
func (r *relation) insertRow(row []int) ([]int, bool) {
	return r.addRow(row, true)
}

func (r *relation) add(tuple []int, copyTuple bool) bool {
	_, added := r.addRow(tuple, copyTuple)
	return added
}

func (r *relation) addRow(tuple []int, copyTuple bool) ([]int, bool) {
	if 4*(len(r.tuples)+1) > 3*len(r.slots) {
		r.grow()
	}
	mask := uint64(len(r.slots) - 1)
	i := hashTuple(tuple) & mask
	for {
		s := r.slots[i]
		if s == 0 {
			break
		}
		if t := r.tuples[s-1]; equalTuple(t, tuple) {
			return t, false
		}
		i = (i + 1) & mask
	}
	t := tuple
	if copyTuple {
		t = make([]int, len(tuple))
		copy(t, tuple)
	}
	ti := int32(len(r.tuples))
	r.tuples = append(r.tuples, t)
	r.slots[i] = ti + 1
	for _, idx := range r.live {
		ph := hashProj(t, idx.positions)
		idx.buckets[ph] = append(idx.buckets[ph], ti)
	}
	return t, true
}

// appendShared appends a tuple known to be absent (delta relations only);
// the slice is shared with the owning relation, not copied.
func (r *relation) appendShared(tuple []int) {
	ti := int32(len(r.tuples))
	r.tuples = append(r.tuples, tuple)
	for _, idx := range r.live {
		ph := hashProj(tuple, idx.positions)
		idx.buckets[ph] = append(idx.buckets[ph], ti)
	}
}

func (r *relation) has(tuple []int) bool {
	_, ok := r.lookup(tuple)
	return ok
}

// lookup returns the stored tuple equal to the argument. The boolean
// carries presence: a stored zero-arity tuple may be a nil slice.
func (r *relation) lookup(tuple []int) ([]int, bool) {
	if len(r.slots) == 0 {
		return nil, false
	}
	mask := uint64(len(r.slots) - 1)
	i := hashTuple(tuple) & mask
	for {
		s := r.slots[i]
		if s == 0 {
			return nil, false
		}
		if t := r.tuples[s-1]; equalTuple(t, tuple) {
			return t, true
		}
		i = (i + 1) & mask
	}
}

// lookupIdx returns the storage index of the tuple, or -1.
func (r *relation) lookupIdx(tuple []int) int {
	if len(r.slots) == 0 {
		return -1
	}
	mask := uint64(len(r.slots) - 1)
	i := hashTuple(tuple) & mask
	for {
		s := r.slots[i]
		if s == 0 {
			return -1
		}
		if equalTuple(r.tuples[s-1], tuple) {
			return int(s - 1)
		}
		i = (i + 1) & mask
	}
}

// removeBatch deletes every listed tuple that is present, compacting
// storage (surviving tuples keep their relative order) and rebuilding
// the dedup table in one pass. Match indexes are discarded and rebuilt
// lazily — deletion is the one mutation that invalidates them, so the
// "inserts never rebuild" guarantee is unaffected. Only dedup relations
// support removal. Returns the number of tuples removed.
//
// Like insert, removeBatch must not run concurrently with readers.
func (r *relation) removeBatch(tuples [][]int) int {
	if !r.dedup {
		panic("datalog: removeBatch on a delta relation")
	}
	var dead map[int]struct{}
	for _, t := range tuples {
		if ti := r.lookupIdx(t); ti >= 0 {
			if dead == nil {
				dead = make(map[int]struct{}, len(tuples))
			}
			dead[ti] = struct{}{}
		}
	}
	if len(dead) == 0 {
		return 0
	}
	out := r.tuples[:0]
	for i, t := range r.tuples {
		if _, d := dead[i]; !d {
			out = append(out, t)
		}
	}
	for i := len(out); i < len(r.tuples); i++ {
		r.tuples[i] = nil
	}
	r.tuples = out
	for i := range r.slots {
		r.slots[i] = 0
	}
	mask := uint64(len(r.slots) - 1)
	for ti, t := range r.tuples {
		i := hashTuple(t) & mask
		for r.slots[i] != 0 {
			i = (i + 1) & mask
		}
		r.slots[i] = int32(ti + 1)
	}
	r.mu.Lock()
	r.indexes = map[uint64]*index{}
	r.live = nil
	r.mu.Unlock()
	return len(dead)
}

// match returns the tuples agreeing with pattern, where pattern[i] < 0
// means "unbound". Partial patterns are served from an incrementally
// maintained index on the bound positions (or a sufficiently selective
// subset of them, with residual filtering); results appear in tuple
// insertion order.
//
// The returned outer slice is buf-backed (or fresh when buf is too
// small) and owned by the caller; the inner tuples alias the relation's
// own storage and MUST NOT be mutated. The result never aliases the
// caller's pattern.
func (r *relation) match(pattern []int, buf [][]int) [][]int {
	var boundArr [16]int
	bound := boundArr[:0]
	var mask uint64
	for i, v := range pattern {
		if v >= 0 {
			bound = append(bound, i)
			if i < 64 {
				mask |= 1 << uint(i)
			}
		}
	}
	if len(bound) == 0 {
		// Copy into buf rather than exposing r.tuples: the caller owns the
		// returned outer slice (it may reuse it as a scratch buffer).
		return append(buf[:0], r.tuples...)
	}
	if len(bound) == len(pattern) && r.dedup && len(pattern) < 64 {
		if t, ok := r.lookup(pattern); ok {
			return append(buf[:0], t)
		}
		return nil
	}
	if len(pattern) >= 64 {
		// Positions beyond the mask width cannot be indexed distinctly;
		// fall back to a filtered scan (unreachable for the paper's
		// bounded-width signatures).
		out := buf[:0]
		for _, t := range r.tuples {
			ok := true
			for _, p := range bound {
				if t[p] != pattern[p] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, t)
			}
		}
		return out
	}
	r.mu.RLock()
	idx := r.indexes[mask]
	r.mu.RUnlock()
	if idx == nil {
		idx = r.obtainIndex(mask, bound)
	}
	ph := hashProj(pattern, idx.positions)
	out := buf[:0]
	for _, ti := range idx.buckets[ph] {
		t := r.tuples[ti]
		ok := true
		for _, p := range bound {
			if t[p] != pattern[p] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// probe answers a streaming-layer Probe: the same index machinery as
// match, but zero-copy — the candidates reference the relation's own
// storage (an index bucket, a lookup hit, or the full tuple array)
// instead of being copied into a buffer, with residual filtering left
// to the ra operator. The concurrency contract matches match.
func (r *relation) probe(pattern []int, c *ra.Candidates) {
	var boundArr [16]int
	bound := boundArr[:0]
	var mask uint64
	for i, v := range pattern {
		if v >= 0 {
			bound = append(bound, i)
			if i < 64 {
				mask |= 1 << uint(i)
			}
		}
	}
	if len(bound) == 0 || len(pattern) >= 64 {
		// Unconstrained, or positions beyond the mask width (then the
		// operator's residual filter does the work, as in match).
		c.SetRows(r.tuples)
		return
	}
	if len(bound) == len(pattern) && r.dedup {
		if t, ok := r.lookup(pattern); ok {
			c.SetOne(t)
		} else {
			c.SetEmpty()
		}
		return
	}
	r.mu.RLock()
	idx := r.indexes[mask]
	r.mu.RUnlock()
	if idx == nil {
		idx = r.obtainIndex(mask, bound)
	}
	c.SetBucket(idx.buckets[hashProj(pattern, idx.positions)], r.tuples)
}

// obtainIndex returns an index able to serve the bound-position mask,
// creating one if needed. If a live index on a subset of the bound
// positions is selective enough (small average bucket), it is aliased
// under the mask instead of building a new index — match's residual
// filter makes any subset index correct.
func (r *relation) obtainIndex(mask uint64, bound []int) *index {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	var best *index
	bestAvg := 0.0
	for _, idx := range r.live {
		if idx.mask&mask != idx.mask {
			continue // not a subset of the bound positions
		}
		keys := len(idx.buckets)
		if keys == 0 {
			keys = 1
		}
		avg := float64(len(r.tuples)) / float64(keys)
		if best == nil || avg < bestAvg {
			best, bestAvg = idx, avg
		}
	}
	if best != nil && bestAvg <= maxReuseBucket {
		r.indexes[mask] = best
		return best
	}
	idx := &index{
		positions: append([]int(nil), bound...),
		mask:      mask,
		buckets:   make(map[uint64][]int32, len(r.tuples)),
	}
	for i, t := range r.tuples {
		ph := hashProj(t, idx.positions)
		idx.buckets[ph] = append(idx.buckets[ph], int32(i))
	}
	r.builds++
	r.live = append(r.live, idx)
	r.indexes[mask] = idx
	return idx
}

// indexBuilds reports how many full index constructions the relation has
// performed (inserts maintain indexes in place and never trigger one).
func (r *relation) indexBuilds() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.builds
}

// clone deep-copies the relation's tuples and dedup table without
// re-hashing: tuple storage is copied through one flat backing array and
// the probe table is copied verbatim. Indexes are rebuilt lazily.
func (r *relation) clone() *relation {
	nr := &relation{arity: r.arity, dedup: r.dedup, indexes: map[uint64]*index{}}
	if n := len(r.tuples); n > 0 {
		flat := make([]int, n*r.arity)
		nr.tuples = make([][]int, n)
		for i, t := range r.tuples {
			row := flat[i*r.arity : i*r.arity+r.arity : i*r.arity+r.arity]
			copy(row, t)
			nr.tuples[i] = row
		}
	}
	if r.slots != nil {
		nr.slots = append(make([]int32, 0, len(r.slots)), r.slots...)
	}
	return nr
}

// Intern returns the ID of the constant, creating it if new.
func (db *DB) Intern(name string) int {
	if id, ok := db.byName[name]; ok {
		return id
	}
	id := len(db.names)
	db.names = append(db.names, name)
	db.byName[name] = id
	return id
}

// ConstName returns the name of an interned constant.
func (db *DB) ConstName(id int) string {
	if id < 0 || id >= len(db.names) {
		return fmt.Sprintf("#%d", id)
	}
	return db.names[id]
}

// NumConsts returns the number of interned constants.
func (db *DB) NumConsts() int { return len(db.names) }

func (db *DB) rel(pred string, arity int) *relation {
	r, ok := db.rels[pred]
	if !ok {
		r = newRelation(arity)
		db.rels[pred] = r
	}
	return r
}

// AddFact inserts a ground fact; reports whether it was new.
func (db *DB) AddFact(pred string, consts ...string) bool {
	tuple := make([]int, len(consts))
	for i, c := range consts {
		tuple[i] = db.Intern(c)
	}
	return db.rel(pred, len(tuple)).insertOwned(tuple)
}

// AddTuple inserts a ground fact of interned constants.
func (db *DB) AddTuple(pred string, tuple []int) bool {
	return db.rel(pred, len(tuple)).insert(tuple)
}

// Has reports whether the fact holds.
func (db *DB) Has(pred string, consts ...string) bool {
	r, ok := db.rels[pred]
	if !ok {
		return false
	}
	tuple := make([]int, len(consts))
	for i, c := range consts {
		id, known := db.byName[c]
		if !known {
			return false
		}
		tuple[i] = id
	}
	return r.has(tuple)
}

// Count returns the number of tuples of pred.
func (db *DB) Count(pred string) int {
	if r, ok := db.rels[pred]; ok {
		return len(r.tuples)
	}
	return 0
}

// NumFacts returns the total number of stored tuples (the |A| of the
// complexity bounds).
func (db *DB) NumFacts() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.tuples)
	}
	return n
}

// IndexBuilds reports how many full match-index constructions have been
// performed for pred. Because insert maintains live indexes in place,
// this stays constant under insertion once the index exists; tests use it
// to pin down the incremental-maintenance guarantee.
func (db *DB) IndexBuilds(pred string) int {
	if r, ok := db.rels[pred]; ok {
		return r.indexBuilds()
	}
	return 0
}

// Tuples returns the facts of pred as constant-name tuples, sorted.
func (db *DB) Tuples(pred string) [][]string {
	r, ok := db.rels[pred]
	if !ok {
		return nil
	}
	out := make([][]string, 0, len(r.tuples))
	for _, t := range r.tuples {
		names := make([]string, len(t))
		for i, e := range t {
			names[i] = db.ConstName(e)
		}
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Preds returns all predicate names with stored tuples, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy sharing no mutable state. Tuple storage and
// the dedup tables are copied directly (no per-tuple re-hashing), so
// cloning is a flat O(|A|) memory copy.
func (db *DB) Clone() *DB {
	c := NewDB()
	c.names = append([]string(nil), db.names...)
	c.byName = make(map[string]int, len(db.byName))
	for n, id := range db.byName {
		c.byName[n] = id
	}
	for p, r := range db.rels {
		c.rels[p] = r.clone()
	}
	return c
}

// FromStructure loads a τ-structure as an extensional database. Every
// domain element is additionally asserted via the unary predicate domPred
// if it is non-empty (so programs can quantify over the domain).
func FromStructure(st *structure.Structure, domPred string) *DB {
	db := NewDB()
	for i := 0; i < st.Size(); i++ {
		id := db.Intern(st.Name(i))
		if domPred != "" {
			db.AddTuple(domPred, []int{id})
		}
	}
	for _, p := range st.Sig().Predicates() {
		for _, tuple := range st.Tuples(p.Name) {
			mapped := make([]int, len(tuple))
			for i, e := range tuple {
				mapped[i] = db.Intern(st.Name(e))
			}
			db.AddTuple(p.Name, mapped)
		}
	}
	return db
}

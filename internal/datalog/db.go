package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/structure"
)

// DB stores relations over interned constants: the extensional database
// the engine evaluates against, and — after evaluation — the computed
// intensional relations.
type DB struct {
	names  []string
	byName map[string]int
	rels   map[string]*relation
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{byName: map[string]int{}, rels: map[string]*relation{}}
}

type relation struct {
	arity   int
	tuples  [][]int
	set     map[string]struct{}
	indexes map[string]map[string][][]int // bound-position mask → key → tuples
}

func newRelation(arity int) *relation {
	return &relation{arity: arity, set: map[string]struct{}{}, indexes: map[string]map[string][][]int{}}
}

func (r *relation) key(tuple []int) string {
	var b strings.Builder
	for i, e := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}

// insert adds a tuple; reports whether it was new. Invalidates indexes.
func (r *relation) insert(tuple []int) bool {
	k := r.key(tuple)
	if _, dup := r.set[k]; dup {
		return false
	}
	r.set[k] = struct{}{}
	cp := make([]int, len(tuple))
	copy(cp, tuple)
	r.tuples = append(r.tuples, cp)
	r.indexes = map[string]map[string][][]int{}
	return true
}

func (r *relation) has(tuple []int) bool {
	_, ok := r.set[r.key(tuple)]
	return ok
}

// match returns the tuples agreeing with pattern, where pattern[i] < 0
// means "unbound". Builds and caches an index for the bound positions.
func (r *relation) match(pattern []int) [][]int {
	bound := make([]int, 0, len(pattern))
	for i, v := range pattern {
		if v >= 0 {
			bound = append(bound, i)
		}
	}
	if len(bound) == 0 {
		return r.tuples
	}
	if len(bound) == len(pattern) {
		if r.has(pattern) {
			return [][]int{pattern}
		}
		return nil
	}
	mask := fmt.Sprint(bound)
	idx, ok := r.indexes[mask]
	if !ok {
		idx = map[string][][]int{}
		for _, t := range r.tuples {
			k := projKey(t, bound)
			idx[k] = append(idx[k], t)
		}
		r.indexes[mask] = idx
	}
	return idx[projKey(pattern, bound)]
}

func projKey(tuple []int, positions []int) string {
	var b strings.Builder
	for i, p := range positions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(tuple[p]))
	}
	return b.String()
}

// Intern returns the ID of the constant, creating it if new.
func (db *DB) Intern(name string) int {
	if id, ok := db.byName[name]; ok {
		return id
	}
	id := len(db.names)
	db.names = append(db.names, name)
	db.byName[name] = id
	return id
}

// ConstName returns the name of an interned constant.
func (db *DB) ConstName(id int) string {
	if id < 0 || id >= len(db.names) {
		return fmt.Sprintf("#%d", id)
	}
	return db.names[id]
}

// NumConsts returns the number of interned constants.
func (db *DB) NumConsts() int { return len(db.names) }

func (db *DB) rel(pred string, arity int) *relation {
	r, ok := db.rels[pred]
	if !ok {
		r = newRelation(arity)
		db.rels[pred] = r
	}
	return r
}

// AddFact inserts a ground fact; reports whether it was new.
func (db *DB) AddFact(pred string, consts ...string) bool {
	tuple := make([]int, len(consts))
	for i, c := range consts {
		tuple[i] = db.Intern(c)
	}
	return db.rel(pred, len(tuple)).insert(tuple)
}

// AddTuple inserts a ground fact of interned constants.
func (db *DB) AddTuple(pred string, tuple []int) bool {
	return db.rel(pred, len(tuple)).insert(tuple)
}

// Has reports whether the fact holds.
func (db *DB) Has(pred string, consts ...string) bool {
	r, ok := db.rels[pred]
	if !ok {
		return false
	}
	tuple := make([]int, len(consts))
	for i, c := range consts {
		id, known := db.byName[c]
		if !known {
			return false
		}
		tuple[i] = id
	}
	return r.has(tuple)
}

// Count returns the number of tuples of pred.
func (db *DB) Count(pred string) int {
	if r, ok := db.rels[pred]; ok {
		return len(r.tuples)
	}
	return 0
}

// NumFacts returns the total number of stored tuples (the |A| of the
// complexity bounds).
func (db *DB) NumFacts() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.tuples)
	}
	return n
}

// Tuples returns the facts of pred as constant-name tuples, sorted.
func (db *DB) Tuples(pred string) [][]string {
	r, ok := db.rels[pred]
	if !ok {
		return nil
	}
	out := make([][]string, 0, len(r.tuples))
	for _, t := range r.tuples {
		names := make([]string, len(t))
		for i, e := range t {
			names[i] = db.ConstName(e)
		}
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Preds returns all predicate names with stored tuples, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy sharing no state.
func (db *DB) Clone() *DB {
	c := NewDB()
	c.names = append([]string(nil), db.names...)
	for n, id := range db.byName {
		c.byName[n] = id
	}
	for p, r := range db.rels {
		nr := newRelation(r.arity)
		for _, t := range r.tuples {
			nr.insert(t)
		}
		c.rels[p] = nr
	}
	return c
}

// FromStructure loads a τ-structure as an extensional database. Every
// domain element is additionally asserted via the unary predicate domPred
// if it is non-empty (so programs can quantify over the domain).
func FromStructure(st *structure.Structure, domPred string) *DB {
	db := NewDB()
	for i := 0; i < st.Size(); i++ {
		id := db.Intern(st.Name(i))
		if domPred != "" {
			db.AddTuple(domPred, []int{id})
		}
	}
	for _, p := range st.Sig().Predicates() {
		for _, tuple := range st.Tuples(p.Name) {
			mapped := make([]int, len(tuple))
			for i, e := range tuple {
				mapped[i] = db.Intern(st.Name(e))
			}
			db.AddTuple(p.Name, mapped)
		}
	}
	return db
}

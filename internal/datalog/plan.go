package datalog

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/datalog/ra"
	"repro/internal/faultinject"
	"repro/internal/stage"
)

// planBuilds counts rulePlan constructions process-wide. Plans carry
// the full pushdown analysis — atom order, probe patterns, filter
// placement — so the regression test pins that evaluation builds
// exactly one plan per compiled rule instance, never one per round or
// per eval call.
var planBuilds atomic.Int64

// PlanBuilds reports the total number of streaming rule plans built
// since process start; tests diff it around an evaluation.
func PlanBuilds() int64 { return planBuilds.Load() }

// rulePlan is the pushdown-analyzed streaming execution plan of one
// compiled rule instance: a pull-based operator tree over the body's
// relations, projected to the head. Built once per (rule, delta
// occurrence) instance and re-used every round; only the relation
// bindings (full vs delta) change between eval calls.
type rulePlan struct {
	root ra.Iterator
	ctl  *ra.Ctl
	// binds are the scan/probe adapters to re-point at the current
	// relation (full or delta) before each eval call.
	binds []*boundRel
	// groundFilters are variable-free negated/builtin atoms, hoisted
	// out of the pipeline and checked once per eval call (matching the
	// materialized engine, which tests them before any join work).
	groundFilters []*filterSpec
	// pushdowns counts lookup joins planned with at least one probe
	// constraint pushed into a relation index.
	pushdowns int64
	// flushed is the ctl.Streamed watermark already reported to the
	// stats counters and charged against the stream-tuples budget.
	flushed int64
}

// boundRel adapts one body atom's relation to ra.Relation. The executor
// re-points r before every eval call; a nil r is an empty relation (a
// predicate with no stored facts).
type boundRel struct {
	r    *relation
	atom int // body atom index, for rebinding
}

func (b *boundRel) Rows() [][]int {
	if b.r == nil {
		return nil
	}
	return b.r.tuples
}

func (b *boundRel) Probe(pattern []int, c *ra.Candidates) {
	if b.r == nil {
		c.SetEmpty()
		return
	}
	b.r.probe(pattern, c)
}

// unitIter emits a single zero-width row per pass: the source under
// rules whose body has no positive relational atoms.
type unitIter struct{ done bool }

func (u *unitIter) Reset() { u.done = false }

func (u *unitIter) Next() (ra.Row, bool, error) {
	if u.done {
		return nil, false, nil
	}
	u.done = true
	return ra.Row{}, true, nil
}

// filterSpec evaluates one negated or builtin body atom against a
// pipeline row: σ that cannot be pushed into a probe. Scratch buffers
// live on the spec; a plan (like its cRule) is single-goroutine.
type filterSpec struct {
	c      *cRule
	a      *cAtom
	cols   []int // per arg: pipeline column, or -1 for a constant
	consts []int
	names  []string // builtin name buffer
}

func (f *filterSpec) check(row ra.Row) (bool, error) {
	args := f.a.ground
	for i, col := range f.cols {
		if col >= 0 {
			args[i] = row[col]
		} else {
			args[i] = f.consts[i]
		}
	}
	var holds bool
	if f.a.builtin {
		for j, id := range args {
			f.names[j] = f.c.db.ConstName(id)
		}
		var err error
		holds, err = callBuiltin(f.a.pred, f.names)
		if err != nil {
			return false, err
		}
	} else {
		holds = f.a.rel != nil && f.a.rel.has(args)
	}
	if f.a.negated {
		holds = !holds
	}
	return holds, nil
}

// buildPlan analyzes the rule once and assembles its streaming operator
// tree: positive atoms ordered delta-first then by shared variables
// (left-deep lookup joins with constants and join columns pushed into
// the index probes; symmetric hash joins only across disconnected
// components), negated/builtin atoms placed as filters at the earliest
// point their variables are bound, dead columns dropped at the source,
// and a constant-space head projection on top.
func buildPlan(c *cRule, deltaOcc int) (*rulePlan, error) {
	planBuilds.Add(1)
	p := &rulePlan{ctl: &ra.Ctl{}}
	p.ctl.Check = func() error {
		if c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				return stage.Wrap(stage.Eval, err)
			}
		}
		return p.flush(c)
	}

	var pos, filters []int
	for i := range c.body {
		if a := &c.body[i]; a.builtin || a.negated {
			filters = append(filters, i)
		} else {
			pos = append(pos, i)
		}
	}

	// Which slots need a pipeline column: those read outside the atom
	// that first binds them (head, filters, or a second positive atom).
	nslots := len(c.binding)
	posCount := make([]int, nslots)
	needCol := make([]bool, nslots)
	seenInAtom := make([]int, nslots)
	for i := range seenInAtom {
		seenInAtom[i] = -1
	}
	for _, ai := range pos {
		for _, ar := range c.body[ai].args {
			if ar.slot >= 0 && seenInAtom[ar.slot] != ai {
				seenInAtom[ar.slot] = ai
				posCount[ar.slot]++
			}
		}
	}
	mark := func(args []cArg) {
		for _, ar := range args {
			if ar.slot >= 0 {
				needCol[ar.slot] = true
			}
		}
	}
	mark(c.head)
	for _, fi := range filters {
		mark(c.body[fi].args)
	}
	for s, n := range posCount {
		if n > 1 {
			needCol[s] = true
		}
	}

	// Atom order: the delta occurrence first (the semi-naive restriction
	// drives the whole pipeline), then greedily any atom sharing a bound
	// variable; an atom sharing none starts a disconnected component.
	used := make([]bool, len(c.body))
	bound := make([]bool, nslots)
	order := make([]int, 0, len(pos))
	take := func(ai int) {
		used[ai] = true
		order = append(order, ai)
		for _, ar := range c.body[ai].args {
			if ar.slot >= 0 {
				bound[ar.slot] = true
			}
		}
	}
	if deltaOcc >= 0 {
		take(deltaOcc)
	}
	for len(order) < len(pos) {
		picked := -1
		for _, ai := range pos {
			if used[ai] {
				continue
			}
			for _, ar := range c.body[ai].args {
				if ar.slot >= 0 && bound[ar.slot] {
					picked = ai
					break
				}
			}
			if picked >= 0 {
				break
			}
		}
		if picked < 0 { // new component: first unprocessed atom
			for _, ai := range pos {
				if !used[ai] {
					picked = ai
					break
				}
			}
		}
		take(picked)
	}

	// Filter placement helpers. A filter is plannable once all its
	// variables have pipeline columns; ground filters hoist out of the
	// tree entirely.
	slotCol := make([]int, nslots)
	for i := range slotCol {
		slotCol[i] = -1
	}
	filterPlaced := make([]bool, len(c.body))
	newFilter := func(fi int) *filterSpec {
		a := &c.body[fi]
		f := &filterSpec{c: c, a: a, cols: make([]int, len(a.args)), consts: make([]int, len(a.args)), names: make([]string, len(a.args))}
		for i, ar := range a.args {
			if ar.slot >= 0 {
				f.cols[i] = slotCol[ar.slot]
			} else {
				f.cols[i] = -1
				f.consts[i] = ar.c
			}
		}
		return f
	}
	for _, fi := range filters {
		ground := true
		for _, ar := range c.body[fi].args {
			if ar.slot >= 0 {
				ground = false
				break
			}
		}
		if ground {
			filterPlaced[fi] = true
			p.groundFilters = append(p.groundFilters, newFilter(fi))
		}
	}

	// Assemble the left-deep tree.
	var tree ra.Iterator
	width := 0
	colBound := make([]bool, nslots) // slot has a pipeline column or was dropped
	for _, ai := range order {
		a := &c.body[ai]
		terms := make([]ra.Term, len(a.args))
		shares := false
		seenAt := make(map[int]int, len(a.args))
		outs := 0
		for j, ar := range a.args {
			switch {
			case ar.slot < 0:
				terms[j] = ra.Term{Kind: ra.TConst, Idx: ar.c}
			case colBound[ar.slot] && slotCol[ar.slot] >= 0:
				terms[j] = ra.Term{Kind: ra.TCol, Idx: slotCol[ar.slot]}
				shares = true
			case colBound[ar.slot]:
				// Bound earlier but column dropped: impossible — a slot
				// in two atoms always needs a column.
				return nil, fmt.Errorf("datalog: internal error: dropped slot reused in rule %s", c.src)
			default:
				if at, ok := seenAt[ar.slot]; ok {
					terms[j] = ra.Term{Kind: ra.TSame, Idx: at}
					continue
				}
				seenAt[ar.slot] = j
				if needCol[ar.slot] {
					terms[j] = ra.Term{Kind: ra.TOut}
					slotCol[ar.slot] = width + outs
					outs++
				} else {
					terms[j] = ra.Term{Kind: ra.TDrop}
				}
			}
		}
		for s := range seenAt {
			colBound[s] = true
		}
		b := &boundRel{atom: ai}
		p.binds = append(p.binds, b)
		switch {
		case tree == nil:
			tree = ra.NewScan(b, terms, p.ctl)
		case shares:
			j := ra.NewLookupJoin(tree, b, terms, width, p.ctl)
			if j.Pushdown() > 0 {
				p.pushdowns++
			}
			tree = j
		default:
			// Disconnected component: cross-join via a symmetric hash
			// join of the tree so far against the atom's scan.
			right := ra.NewScan(b, terms, p.ctl)
			tree = ra.NewHashJoin(tree, right, nil, nil, width, outs, p.ctl)
		}
		width += outs

		// Attach every filter whose variables are now all columned.
		for _, fi := range filters {
			if filterPlaced[fi] {
				continue
			}
			ready := true
			for _, ar := range c.body[fi].args {
				if ar.slot >= 0 && slotCol[ar.slot] < 0 {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			filterPlaced[fi] = true
			tree = ra.NewSelect(tree, newFilter(fi).check, p.ctl)
		}
	}
	if tree == nil {
		tree = &unitIter{}
	}
	for _, fi := range filters {
		if !filterPlaced[fi] {
			return nil, fmt.Errorf("datalog: internal error: unbound atom remains in rule %s", c.src)
		}
	}

	headCols := make([]ra.Term, len(c.head))
	for i, ar := range c.head {
		if ar.slot >= 0 {
			if slotCol[ar.slot] < 0 {
				return nil, fmt.Errorf("datalog: internal error: unbound head variable in rule %s", c.src)
			}
			headCols[i] = ra.Term{Kind: ra.TCol, Idx: slotCol[ar.slot]}
		} else {
			headCols[i] = ra.Term{Kind: ra.TConst, Idx: ar.c}
		}
	}
	p.root = ra.NewProject(tree, headCols, p.ctl)
	addJoinsPushedDown(c.collector, p.pushdowns)
	return p, nil
}

// flush reports the rows streamed since the last flush to the stats
// counters and charges them against the stream-tuples budget.
func (p *rulePlan) flush(c *cRule) error {
	d := p.ctl.Streamed - p.flushed
	if d == 0 {
		return nil
	}
	p.flushed = p.ctl.Streamed
	addTuplesStreamed(c.collector, d)
	if c.budget != nil {
		if err := c.budget.AddStreamTuples(d); err != nil {
			return stage.Wrap(stage.Eval, err)
		}
	}
	return nil
}

// evalStream runs the rule's streaming plan: rebind the relations,
// reset the operator tree, and pull rows into emit. Emitted rows are
// the projection's reused buffer — sinks copy what they keep.
func (c *cRule) evalStream(emit func([]int)) error {
	p := c.plan
	for _, b := range p.binds {
		b.r = c.body[b.atom].rel
	}
	for _, f := range p.groundFilters {
		holds, err := f.check(nil)
		if err != nil || !holds {
			return err
		}
	}
	p.root.Reset()
	for {
		row, ok, err := p.root.Next()
		if err != nil {
			if ferr := p.flush(c); ferr != nil {
				err = ferr
			} else if errors.Is(err, faultinject.ErrInjected) {
				err = stage.Wrap(stage.Eval, err)
			}
			notePeakBuffered(c.collector, p.ctl.PeakBuffered)
			return err
		}
		if !ok {
			break
		}
		emit(row)
	}
	notePeakBuffered(c.collector, p.ctl.PeakBuffered)
	return p.flush(c)
}

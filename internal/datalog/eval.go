package datalog

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// maxWorkers caps the goroutine fan-out of parallel stratum evaluation.
// Results are deterministic at every setting (task buffers are merged in
// task order); 1 forces fully serial evaluation.
var maxWorkers atomic.Int32

func init() { maxWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers sets the worker cap for parallel stratum evaluation and
// returns the previous value. Values below 1 are treated as 1 (serial).
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int32(n)))
}

// Eval computes the least fixpoint of the program over the extensional
// database by stratified semi-naive bottom-up evaluation and returns a
// database containing the extensional and all derived intensional facts.
// The input database is not modified.
//
// The program must be stratifiable: no predicate may depend negatively on
// itself through a cycle. Negation over purely extensional predicates —
// all the paper's constructions need (the programs of Theorem 4.5 negate
// only τ-atoms) — is always stratified.
//
// Within each stratum the rule×delta-occurrence evaluations of a round
// run on a worker pool; each task buffers its derivations, and buffers
// are merged through the dedup sets in task order, so the result (and
// even the tuple insertion order) is deterministic and independent of the
// worker count.
func Eval(p *Program, edb *DB) (*DB, error) {
	return EvalCtx(context.Background(), p, edb)
}

// EvalCtx is Eval with cancellation support: the stratum loop, each
// semi-naive round and the join recursion itself (every 1024 extension
// steps) check ctx, so evaluation of a large program stops promptly
// after cancellation or a deadline. A context error is returned wrapped
// in a *stage.Error tagged stage.Eval.
func EvalCtx(ctx context.Context, p *Program, edb *DB) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	intens := p.IntensionalPreds()
	for pred := range intens {
		if IsBuiltin(pred) {
			return nil, fmt.Errorf("datalog: builtin %s cannot be intensional", pred)
		}
	}
	strata, err := stratify(p)
	if err != nil {
		return nil, err
	}
	cfg := evalConfig{
		streaming: CurrentEngine() == EngineStreaming,
		budget:    stage.BudgetFrom(ctx),
		collector: statsCollectorFrom(ctx),
	}
	db := edb.Clone()
	// Intern every constant of the program up front: rule compilation then
	// only reads the interning table, which keeps parallel tasks free of
	// writes to shared DB state.
	internProgramConsts(p, db)
	byHead := headIndex(p)
	for _, stratum := range strata {
		if err := ctx.Err(); err != nil {
			return nil, stage.Wrap(stage.Eval, err)
		}
		inStratum := map[string]bool{}
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		if err := evalStratum(ctx, stratumRules(p, byHead, stratum), inStratum, db, cfg); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// evalConfig is the per-run evaluation setup, captured once at EvalCtx
// entry: the engine choice (a concurrent SetEngine never splits a run),
// the stream-tuples budget, and the stats collector.
type evalConfig struct {
	streaming bool
	budget    *stage.Budget
	collector *StatsCollector
}

func internProgramConsts(p *Program, db *DB) {
	for _, r := range p.Rules {
		for _, t := range r.Head.Args {
			if !t.IsVar() {
				db.Intern(t.Const)
			}
		}
		for _, a := range r.Body {
			for _, t := range a.Args {
				if !t.IsVar() {
					db.Intern(t.Const)
				}
			}
		}
	}
}

// headIndex maps every head predicate to the ordered indices of its
// rules. Compiled MSO programs have thousands of predicates and (mostly)
// one stratum per predicate, so the stratum loops must gather their
// rules through this index — rescanning p.Rules per stratum is
// quadratic in the program and used to dominate evaluation wholesale.
func headIndex(p *Program) map[string][]int {
	byHead := make(map[string][]int)
	for i, r := range p.Rules {
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], i)
	}
	return byHead
}

// stratumRules returns the stratum's rules in program order — the same
// slice the old full scan produced, so task order (and with it the
// deterministic tuple insertion order) is unchanged.
func stratumRules(p *Program, byHead map[string][]int, stratum []string) []Rule {
	var idx []int
	for _, pred := range stratum {
		idx = append(idx, byHead[pred]...)
	}
	sort.Ints(idx)
	rules := make([]Rule, len(idx))
	for i, ri := range idx {
		rules[i] = p.Rules[ri]
	}
	return rules
}

// stratify orders the intensional predicates into strata such that every
// negative dependency points strictly downward. Returns groups of
// predicates in evaluation order.
func stratify(p *Program) ([][]string, error) {
	intens := p.IntensionalPreds()
	preds := make([]string, 0, len(intens))
	for pr := range intens {
		preds = append(preds, pr)
	}
	sort.Strings(preds)
	index := map[string]int{}
	for i, pr := range preds {
		index[pr] = i
	}
	n := len(preds)
	type edge struct {
		to  int
		neg bool
	}
	adj := make([][]edge, n)
	for _, r := range p.Rules {
		h := index[r.Head.Pred]
		for _, a := range r.Body {
			if bi, ok := index[a.Pred]; ok {
				adj[h] = append(adj[h], edge{to: bi, neg: a.Negated})
			}
		}
	}
	// Tarjan SCC (iterative).
	const unvisited = -1
	low := make([]int, n)
	num := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range num {
		num[i] = unvisited
		comp[i] = -1
	}
	var stack, callStack []int
	counter, nComp := 0, 0
	for s := 0; s < n; s++ {
		if num[s] != unvisited {
			continue
		}
		callStack = append(callStack, s)
		iter := map[int]int{}
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if num[v] == unvisited {
				num[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for iter[v] < len(adj[v]) {
				e := adj[v][iter[v]]
				iter[v]++
				if num[e.to] == unvisited {
					callStack = append(callStack, e.to)
					advanced = true
					break
				}
				if onStack[e.to] && num[e.to] < low[v] {
					low[v] = num[e.to]
				}
			}
			if advanced {
				continue
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	// Negative edges within a component are unstratifiable.
	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			if e.neg && comp[v] == comp[e.to] {
				return nil, fmt.Errorf("datalog: program not stratified: %s depends negatively on %s within a cycle", preds[v], preds[e.to])
			}
		}
	}
	// Tarjan numbers components in reverse topological order of the
	// dependency graph (head → body), so component 0 has no dependencies:
	// evaluate components in increasing order.
	groups := make([][]string, nComp)
	for v, c := range comp {
		groups[c] = append(groups[c], preds[v])
	}
	return groups, nil
}

// stratumTask is one unit of a round's work: a compiled rule evaluated
// either in full (occ == -1, the first pass) or with one body occurrence
// of a stratum predicate restricted to the previous round's delta. Each
// (rule, occ) pair keeps its own compiled instance across rounds, so the
// scratch buffers warm up once and tasks never share mutable state.
type stratumTask struct {
	prog *cRule
	occ  int
}

// parallelThreshold is the minimum number of pending input tuples before
// a round fans its tasks out to goroutines; below it the per-goroutine
// overhead outweighs the work.
const parallelThreshold = 128

// evalStratum runs semi-naive iteration for one stratum's rules.
func evalStratum(ctx context.Context, rules []Rule, inStratum map[string]bool, db *DB, cfg evalConfig) error {
	// Compiled instances per rule, indexed by occ+1 (slot 0 is the full
	// first-pass evaluation). Filled lazily; compilation — including the
	// one-time streaming plan build — is serial, so the parallel phase
	// only ever reads the cache.
	compiled := make([][]*cRule, len(rules))
	instance := func(ri, occ int) (*cRule, error) {
		if compiled[ri] == nil {
			compiled[ri] = make([]*cRule, len(rules[ri].Body)+1)
		}
		if c := compiled[ri][occ+1]; c != nil {
			return c, nil
		}
		c := compileRule(rules[ri], db)
		c.ctx = ctx
		c.budget = cfg.budget
		c.collector = cfg.collector
		if cfg.streaming {
			c.streaming = true
			plan, err := buildPlan(c, occ)
			if err != nil {
				return nil, err
			}
			c.plan = plan
		}
		compiled[ri][occ+1] = c
		return c, nil
	}

	// First pass: evaluate every rule in full.
	tasks := make([]stratumTask, len(rules))
	for i := range rules {
		c, err := instance(i, -1)
		if err != nil {
			return err
		}
		tasks[i] = stratumTask{prog: c, occ: -1}
	}
	delta, err := runStratumRound(ctx, tasks, nil, db, db.NumFacts())
	if err != nil {
		return err
	}

	// Iterate: each recursive rule is re-evaluated once per occurrence of
	// a stratum predicate in its body, with that occurrence restricted to
	// the delta of the previous round.
	for {
		total := 0
		for _, nr := range delta {
			total += len(nr.tuples)
		}
		if total == 0 {
			return nil
		}
		tasks = tasks[:0]
		for ri, r := range rules {
			for occ, a := range r.Body {
				if a.Negated || !inStratum[a.Pred] {
					continue
				}
				if d := delta[a.Pred]; d == nil || len(d.tuples) == 0 {
					continue
				}
				c, err := instance(ri, occ)
				if err != nil {
					return err
				}
				tasks = append(tasks, stratumTask{prog: c, occ: occ})
			}
		}
		if len(tasks) == 0 {
			return nil
		}
		delta, err = runStratumRound(ctx, tasks, delta, db, total)
		if err != nil {
			return err
		}
	}
}

// runStratumRound evaluates one round's tasks and returns the delta of
// genuinely new facts. Small rounds run serially with derivations
// inserted as they are found; large rounds fan the tasks out to a worker
// pool, with each task buffering its derivations and the buffers merged
// through the dedup tables in task order afterwards — so the derived
// fact set is identical, and for a fixed worker setting even the tuple
// insertion order is deterministic.
//
// Each task evaluates one rule, so everything it emits belongs to the
// rule's head predicate; emitted tuples are freshly allocated and the
// database adopts them without copying, sharing new ones with the
// (dedup-free) delta relation rather than re-hashing them into it.
func runStratumRound(ctx context.Context, tasks []stratumTask, delta map[string]*relation, db *DB, workSize int) (map[string]*relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	newDelta := map[string]*relation{}
	sink := func(t stratumTask) (*relation, *relation) {
		pred := t.prog.headPred
		nd, ok := newDelta[pred]
		if !ok {
			nd = newDeltaRelation(t.prog.headArity)
			newDelta[pred] = nd
		}
		return db.rel(pred, t.prog.headArity), nd
	}
	workers := int(maxWorkers.Load())
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// evalTask wraps one rule evaluation with panic containment and the
	// worker-loop fault-injection point: a handler or join panic becomes
	// a stage-tagged *stage.PanicError instead of killing the worker
	// goroutine (and with it the process).
	evalTask := func(t stratumTask, emit func([]int)) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = stage.Wrap(stage.Eval, stage.NewPanicError(r))
			}
		}()
		if err := faultinject.Check("datalog.stratum-task"); err != nil {
			return stage.Wrap(stage.Eval, err)
		}
		return t.prog.eval(delta, t.occ, emit)
	}
	if workers <= 1 || workSize < parallelThreshold {
		for _, t := range tasks {
			rel, nd := sink(t)
			var err error
			if t.prog.streaming {
				// Streamed rows are reused operator buffers: the relation
				// copies only genuinely new tuples, so the serial path
				// holds O(1) rows in flight per rule.
				err = evalTask(t, func(row []int) {
					if stored, added := rel.insertRow(row); added {
						nd.appendShared(stored)
					}
				})
			} else {
				err = evalTask(t, func(tuple []int) {
					if rel.insertOwned(tuple) {
						nd.appendShared(tuple)
					}
				})
			}
			if err != nil {
				return nil, err
			}
		}
		return newDelta, nil
	}
	// Parallel round: each task buffers its derivations privately and the
	// buffers merge in task order. Streaming tasks pre-filter against the
	// (frozen, read-only) head relation so already-known facts are never
	// buffered, and the buffers themselves are reused across rounds —
	// together this replaces the old grow-only per-round join buffers.
	headRels := make([]*relation, len(tasks))
	bufs := make([][][]int, len(tasks))
	for i, t := range tasks {
		headRels[i] = db.rel(t.prog.headPred, t.prog.headArity)
		bufs[i] = t.prog.outBuf[:0]
	}
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tasks); i += workers {
				i := i
				t := tasks[i]
				if t.prog.streaming {
					rel := headRels[i]
					errs[i] = evalTask(t, func(row []int) {
						if !rel.has(row) {
							bufs[i] = append(bufs[i], t.prog.arenaCopy(row))
						}
					})
				} else {
					errs[i] = evalTask(t, func(tuple []int) {
						bufs[i] = append(bufs[i], tuple)
					})
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(tasks) > 0 && tasks[0].prog.streaming {
		pending := int64(0)
		for _, buf := range bufs {
			pending += int64(len(buf))
		}
		notePeakBuffered(tasks[0].prog.collector, pending)
	}
	for i, buf := range bufs {
		rel, nd := sink(tasks[i])
		for _, tuple := range buf {
			if rel.insertOwned(tuple) {
				nd.appendShared(tuple)
			}
		}
		tasks[i].prog.outBuf = buf[:0]
	}
	return newDelta, nil
}

// cArg is a compiled atom argument: a variable slot (slot ≥ 0) or an
// interned constant (slot < 0, constant ID in c).
type cArg struct {
	slot int
	c    int
}

// cAtom is a compiled body atom: predicate classification resolved once,
// arguments mapped to slots/IDs, and reusable per-atom scratch buffers so
// the join recursion allocates nothing per tuple. rel is transient: it is
// re-resolved at the start of every eval call.
type cAtom struct {
	pred     string
	negated  bool
	builtin  bool
	args     []cArg
	rel      *relation // resolved per eval call (nil: empty relation)
	pat      []int     // pattern buffer
	ground   []int     // ground-args buffer
	matchBuf [][]int   // match result buffer
}

// cRule is a rule compiled for repeated evaluation: variables mapped to
// integer slots, atoms to cAtoms, plus all the scratch state the join
// recursion needs. A cRule instance is single-threaded — evalStratum keeps
// one per (rule, delta-occurrence) task so buffers warm up across rounds
// without any sharing between parallel tasks.
type cRule struct {
	src       Rule
	db        *DB
	ctx       context.Context // nil: never cancelled
	tick      uint            // cancellation-check counter for step
	headPred  string
	headArity int
	head      []cArg
	body      []cAtom
	binding   []int  // slot → constant ID, -1 unbound
	processed []bool // body atoms consumed on the current recursion path
	deltaOcc  int
	emit      func([]int)
	stopped   bool // set by an emit callback to abandon the enumeration
	// Head tuples are carved from arena chunks: they are handed to emit
	// (and ultimately adopted by the database), so allocating them one
	// slice at a time would dominate GC work on derivation-heavy programs.
	arena []int
	// Streaming-engine state: the pushdown-analyzed plan (built once per
	// instance, reused every round), budget/stats plumbing, and the
	// parallel-round output buffer reused across rounds.
	streaming bool
	plan      *rulePlan
	budget    *stage.Budget
	collector *StatsCollector
	outBuf    [][]int
}

// compileRule maps the rule's variables to integer slots and its atom
// arguments to slot/constant descriptors, so the per-tuple inner loops of
// eval touch no maps. All program constants must already be interned when
// compilation can race with other DB readers (Eval guarantees this by
// interning up front and compiling serially).
func compileRule(r Rule, db *DB) *cRule {
	slots := map[string]int{}
	compileArgs := func(args []Term) []cArg {
		out := make([]cArg, len(args))
		for i, t := range args {
			if t.IsVar() {
				s, ok := slots[t.Var]
				if !ok {
					s = len(slots)
					slots[t.Var] = s
				}
				out[i] = cArg{slot: s}
			} else {
				out[i] = cArg{slot: -1, c: db.Intern(t.Const)}
			}
		}
		return out
	}
	body := make([]cAtom, len(r.Body))
	for i, a := range r.Body {
		args := compileArgs(a.Args)
		body[i] = cAtom{
			pred:    a.Pred,
			negated: a.Negated,
			builtin: IsBuiltin(a.Pred),
			args:    args,
			pat:     make([]int, len(args)),
			ground:  make([]int, len(args)),
		}
	}
	head := compileArgs(r.Head.Args)
	binding := make([]int, len(slots))
	for i := range binding {
		binding[i] = -1
	}
	return &cRule{
		src:       r,
		db:        db,
		headPred:  r.Head.Pred,
		headArity: len(r.Head.Args),
		head:      head,
		body:      body,
		binding:   binding,
		processed: make([]bool, len(r.Body)),
	}
}

// eval enumerates all satisfying assignments of the rule body and emits
// the corresponding head tuples (freshly allocated, ownership passes to
// emit). If deltaOcc ≥ 0, that body-atom occurrence is matched against
// delta[pred] instead of the full relation.
//
// Concurrent eval calls on distinct cRule instances are read-only on the
// DB apart from lazy index builds, which the relations synchronize
// internally.
func (c *cRule) eval(delta map[string]*relation, deltaOcc int, emit func([]int)) error {
	c.deltaOcc = deltaOcc
	c.emit = emit
	for i := range c.body {
		a := &c.body[i]
		if a.builtin {
			continue
		}
		if i == deltaOcc {
			a.rel = delta[a.pred]
		} else {
			a.rel = c.db.rels[a.pred]
		}
	}
	if c.streaming {
		return c.evalStream(emit)
	}
	return c.step(0)
}

// arenaCopy copies a borrowed row into an arena-carved tuple the caller
// may retain (parallel tasks buffering new derivations).
func (c *cRule) arenaCopy(row []int) []int {
	n := len(row)
	if len(c.arena) < n {
		c.arena = make([]int, 4096+n)
	}
	tuple := c.arena[:n:n]
	c.arena = c.arena[n:]
	copy(tuple, row)
	return tuple
}

func (c *cRule) emitHead() {
	n := len(c.head)
	if len(c.arena) < n {
		c.arena = make([]int, 4096+n)
	}
	tuple := c.arena[:n:n]
	c.arena = c.arena[n:]
	for i, a := range c.head {
		if a.slot >= 0 {
			tuple[i] = c.binding[a.slot]
		} else {
			tuple[i] = a.c
		}
	}
	c.emit(tuple)
}

func (c *cRule) atomBound(a *cAtom) bool {
	for _, ar := range a.args {
		if ar.slot >= 0 && c.binding[ar.slot] < 0 {
			return false
		}
	}
	return true
}

func (c *cRule) groundArgs(a *cAtom) []int {
	for i, ar := range a.args {
		if ar.slot >= 0 {
			a.ground[i] = c.binding[ar.slot]
		} else {
			a.ground[i] = ar.c
		}
	}
	return a.ground
}

// step extends the current partial assignment by one body atom. Every
// 1024 extension steps it polls the context, so even a single huge join
// stops promptly after cancellation.
func (c *cRule) step(done int) error {
	if c.stopped {
		return nil
	}
	if c.tick++; c.tick&1023 == 0 && c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return stage.Wrap(stage.Eval, err)
		}
	}
	if done == len(c.body) {
		c.emitHead()
		return nil
	}
	// Prefer any fully bound negated or builtin atom (cheap filters).
	for i := range c.body {
		a := &c.body[i]
		if c.processed[i] || (!a.negated && !a.builtin) || !c.atomBound(a) {
			continue
		}
		args := c.groundArgs(a)
		var holds bool
		if a.builtin {
			names := make([]string, len(args))
			for j, id := range args {
				names[j] = c.db.ConstName(id)
			}
			var err error
			holds, err = callBuiltin(a.pred, names)
			if err != nil {
				return err
			}
		} else {
			holds = a.rel != nil && a.rel.has(args)
		}
		if a.negated {
			holds = !holds
		}
		if !holds {
			return nil
		}
		c.processed[i] = true
		err := c.step(done + 1)
		c.processed[i] = false
		return err
	}
	// Otherwise take the delta occurrence while it is still pending — its
	// relation is the round's wavefront (typically a handful of tuples
	// whose constants bind most of the rule), so starting there turns the
	// remaining enumeration into indexed lookups; the streaming planner
	// applies the same heuristic in buildPlan. Then the first unprocessed
	// positive relational atom in body order.
	pick := -1
	if d := c.deltaOcc; d >= 0 && !c.processed[d] && !c.body[d].negated && !c.body[d].builtin {
		pick = d
	}
	if pick < 0 {
		for i := range c.body {
			a := &c.body[i]
			if !c.processed[i] && !a.negated && !a.builtin {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return fmt.Errorf("datalog: internal error: unbound atom remains in rule %s", c.src)
	}
	a := &c.body[pick]
	rel := a.rel
	if rel == nil {
		return nil // empty relation: no matches
	}
	anyBound := false
	for j, ar := range a.args {
		if ar.slot >= 0 {
			v := c.binding[ar.slot]
			a.pat[j] = v // -1 when unbound
			anyBound = anyBound || v >= 0
		} else {
			a.pat[j] = ar.c
			anyBound = true
		}
	}
	// All-unbound patterns iterate the relation's storage directly via
	// a local snapshot (stable under concurrent-phase appends) instead
	// of copying tuple headers through match.
	tuples := rel.tuples
	if anyBound {
		a.matchBuf = rel.match(a.pat, a.matchBuf)
		tuples = a.matchBuf
	}
	c.processed[pick] = true
	var boundBuf [16]int
	for _, tuple := range tuples {
		// Unify, handling repeated fresh variables.
		bound := boundBuf[:0]
		ok := true
		for j, ar := range a.args {
			if ar.slot < 0 {
				continue
			}
			if v := c.binding[ar.slot]; v >= 0 {
				if tuple[j] != v {
					ok = false
					break
				}
			} else {
				c.binding[ar.slot] = tuple[j]
				bound = append(bound, ar.slot)
			}
		}
		if ok {
			if err := c.step(done + 1); err != nil {
				return err
			}
		}
		for _, s := range bound {
			c.binding[s] = -1
		}
		if c.stopped {
			break
		}
	}
	c.processed[pick] = false
	return nil
}

// evalRule compiles the rule and evaluates it once; the incremental path
// in evalStratum keeps compiled instances alive across rounds instead.
// Retained for one-shot callers (the naive reference evaluator, tests).
func evalRule(r Rule, db *DB, delta map[string]*relation, deltaOcc int, emit func(string, []int)) error {
	c := compileRule(r, db)
	return c.eval(delta, deltaOcc, func(tuple []int) { emit(r.Head.Pred, tuple) })
}

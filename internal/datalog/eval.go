package datalog

import (
	"fmt"
	"sort"
)

// Eval computes the least fixpoint of the program over the extensional
// database by stratified semi-naive bottom-up evaluation and returns a
// database containing the extensional and all derived intensional facts.
// The input database is not modified.
//
// The program must be stratifiable: no predicate may depend negatively on
// itself through a cycle. Negation over purely extensional predicates —
// all the paper's constructions need (the programs of Theorem 4.5 negate
// only τ-atoms) — is always stratified.
func Eval(p *Program, edb *DB) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	intens := p.IntensionalPreds()
	for pred := range intens {
		if IsBuiltin(pred) {
			return nil, fmt.Errorf("datalog: builtin %s cannot be intensional", pred)
		}
	}
	strata, err := stratify(p)
	if err != nil {
		return nil, err
	}
	db := edb.Clone()
	for _, stratum := range strata {
		inStratum := map[string]bool{}
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var rules []Rule
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := evalStratum(rules, inStratum, db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// stratify orders the intensional predicates into strata such that every
// negative dependency points strictly downward. Returns groups of
// predicates in evaluation order.
func stratify(p *Program) ([][]string, error) {
	intens := p.IntensionalPreds()
	preds := make([]string, 0, len(intens))
	for pr := range intens {
		preds = append(preds, pr)
	}
	sort.Strings(preds)
	index := map[string]int{}
	for i, pr := range preds {
		index[pr] = i
	}
	n := len(preds)
	type edge struct {
		to  int
		neg bool
	}
	adj := make([][]edge, n)
	for _, r := range p.Rules {
		h := index[r.Head.Pred]
		for _, a := range r.Body {
			if bi, ok := index[a.Pred]; ok {
				adj[h] = append(adj[h], edge{to: bi, neg: a.Negated})
			}
		}
	}
	// Tarjan SCC (iterative).
	const unvisited = -1
	low := make([]int, n)
	num := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range num {
		num[i] = unvisited
		comp[i] = -1
	}
	var stack, callStack []int
	counter, nComp := 0, 0
	for s := 0; s < n; s++ {
		if num[s] != unvisited {
			continue
		}
		callStack = append(callStack, s)
		iter := map[int]int{}
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if num[v] == unvisited {
				num[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for iter[v] < len(adj[v]) {
				e := adj[v][iter[v]]
				iter[v]++
				if num[e.to] == unvisited {
					callStack = append(callStack, e.to)
					advanced = true
					break
				}
				if onStack[e.to] && num[e.to] < low[v] {
					low[v] = num[e.to]
				}
			}
			if advanced {
				continue
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	// Negative edges within a component are unstratifiable.
	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			if e.neg && comp[v] == comp[e.to] {
				return nil, fmt.Errorf("datalog: program not stratified: %s depends negatively on %s within a cycle", preds[v], preds[e.to])
			}
		}
	}
	// Tarjan numbers components in reverse topological order of the
	// dependency graph (head → body), so component 0 has no dependencies:
	// evaluate components in increasing order.
	groups := make([][]string, nComp)
	for v, c := range comp {
		groups[c] = append(groups[c], preds[v])
	}
	return groups, nil
}

// evalStratum runs semi-naive iteration for one stratum's rules.
func evalStratum(rules []Rule, inStratum map[string]bool, db *DB) error {
	// deltas of the previous iteration, per predicate.
	delta := map[string]*relation{}

	// First pass: evaluate every rule in full.
	newDelta := map[string]*relation{}
	for _, r := range rules {
		if err := evalRule(r, db, nil, -1, func(pred string, tuple []int) {
			if db.rel(pred, len(tuple)).insert(tuple) {
				nr, ok := newDelta[pred]
				if !ok {
					nr = newRelation(len(tuple))
					newDelta[pred] = nr
				}
				nr.insert(tuple)
			}
		}); err != nil {
			return err
		}
	}
	delta = newDelta

	// Iterate: each recursive rule is re-evaluated once per occurrence of
	// a stratum predicate in its body, with that occurrence restricted to
	// the delta of the previous round.
	for {
		anyDelta := false
		for _, nr := range delta {
			if len(nr.tuples) > 0 {
				anyDelta = true
			}
		}
		if !anyDelta {
			return nil
		}
		newDelta = map[string]*relation{}
		emit := func(pred string, tuple []int) {
			if db.rel(pred, len(tuple)).insert(tuple) {
				nr, ok := newDelta[pred]
				if !ok {
					nr = newRelation(len(tuple))
					newDelta[pred] = nr
				}
				nr.insert(tuple)
			}
		}
		for _, r := range rules {
			for occ, a := range r.Body {
				if a.Negated || !inStratum[a.Pred] {
					continue
				}
				if delta[a.Pred] == nil || len(delta[a.Pred].tuples) == 0 {
					continue
				}
				if err := evalRule(r, db, delta, occ, emit); err != nil {
					return err
				}
			}
		}
		delta = newDelta
	}
}

// evalRule enumerates all satisfying assignments of the rule body and
// emits the corresponding head tuples. If deltaOcc ≥ 0, that body-atom
// occurrence is matched against delta[pred] instead of the full relation.
func evalRule(r Rule, db *DB, delta map[string]*relation, deltaOcc int, emit func(string, []int)) error {
	binding := map[string]int{}
	processed := make([]bool, len(r.Body))

	var emitHead func() error
	emitHead = func() error {
		tuple := make([]int, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.IsVar() {
				tuple[i] = binding[t.Var]
			} else {
				tuple[i] = db.Intern(t.Const)
			}
		}
		emit(r.Head.Pred, tuple)
		return nil
	}

	atomBound := func(a Atom) bool {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := binding[t.Var]; !ok {
					return false
				}
			}
		}
		return true
	}

	groundArgs := func(a Atom) []int {
		args := make([]int, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar() {
				args[i] = binding[t.Var]
			} else {
				args[i] = db.Intern(t.Const)
			}
		}
		return args
	}

	var step func(done int) error
	step = func(done int) error {
		if done == len(r.Body) {
			return emitHead()
		}
		// Prefer any fully bound negated or builtin atom (cheap filters).
		for i, a := range r.Body {
			if processed[i] || (!a.Negated && !IsBuiltin(a.Pred)) || !atomBound(a) {
				continue
			}
			args := groundArgs(a)
			var holds bool
			if IsBuiltin(a.Pred) {
				names := make([]string, len(args))
				for j, id := range args {
					names[j] = db.ConstName(id)
				}
				var err error
				holds, err = callBuiltin(a.Pred, names)
				if err != nil {
					return err
				}
			} else {
				rel, ok := db.rels[a.Pred]
				holds = ok && rel.has(args)
			}
			if a.Negated {
				holds = !holds
			}
			if !holds {
				return nil
			}
			processed[i] = true
			err := step(done + 1)
			processed[i] = false
			return err
		}
		// Otherwise take the first unprocessed positive relational atom.
		for i, a := range r.Body {
			if processed[i] || a.Negated || IsBuiltin(a.Pred) {
				continue
			}
			var rel *relation
			if i == deltaOcc {
				rel = delta[a.Pred]
			} else {
				rel = db.rels[a.Pred]
			}
			if rel == nil {
				return nil // empty relation: no matches
			}
			pattern := make([]int, len(a.Args))
			for j, t := range a.Args {
				if t.IsVar() {
					if v, ok := binding[t.Var]; ok {
						pattern[j] = v
					} else {
						pattern[j] = -1
					}
				} else {
					pattern[j] = db.Intern(t.Const)
				}
			}
			processed[i] = true
			for _, tuple := range rel.match(pattern) {
				// Unify, handling repeated fresh variables.
				bound := make([]string, 0, len(a.Args))
				ok := true
				for j, t := range a.Args {
					if !t.IsVar() {
						continue
					}
					if v, known := binding[t.Var]; known {
						if tuple[j] != v {
							ok = false
							break
						}
					} else {
						binding[t.Var] = tuple[j]
						bound = append(bound, t.Var)
					}
				}
				if ok {
					if err := step(done + 1); err != nil {
						return err
					}
				}
				for _, v := range bound {
					delete(binding, v)
				}
			}
			processed[i] = false
			return nil
		}
		return fmt.Errorf("datalog: internal error: unbound atom remains in rule %s", r)
	}
	return step(0)
}

package datalog

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// tcProgram is the transitive-closure workload the streaming tests
// share: rule 2 joins the recursive predicate against the edge index,
// so it exercises the planner's delta ordering and lookup-join pushdown.
const tcProgramSrc = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z)."

func chainEDB(n int) *DB {
	db := NewDB()
	for i := 0; i < n; i++ {
		db.AddFact("edge", "v"+strconv.Itoa(i), "v"+strconv.Itoa(i+1))
	}
	return db
}

// TestStreamPlanBuiltOncePerRule pins the plan-once contract: the
// number of streaming plans built during an evaluation depends only on
// the program's (rule, delta-occurrence) instances, never on how many
// semi-naive rounds run. A 10-edge and a 60-edge chain take very
// different round counts but must build exactly the same three plans
// (two full first-pass instances plus rule 2's delta occurrence).
func TestStreamPlanBuiltOncePerRule(t *testing.T) {
	defer SetEngine(SetEngine(EngineStreaming))
	p := MustParse(tcProgramSrc)
	builds := func(n int) int64 {
		before := PlanBuilds()
		if _, err := Eval(p, chainEDB(n)); err != nil {
			t.Fatal(err)
		}
		return PlanBuilds() - before
	}
	small, large := builds(10), builds(60)
	if small != large {
		t.Fatalf("plan builds scale with round count: %d at n=10 vs %d at n=60", small, large)
	}
	if small != 3 {
		t.Fatalf("plan builds = %d, want 3 (one per compiled rule instance)", small)
	}
}

// TestStreamingCancelMidJoin pins mid-stream cancellation: the operator
// pipeline's control block polls the context between pulls, so a
// deadline expiring inside one huge stratum stops the streaming engine
// promptly with a stage-tagged context error — without waiting for the
// round, stratum, or fixpoint to finish.
func TestStreamingCancelMidJoin(t *testing.T) {
	defer SetEngine(SetEngine(EngineStreaming))
	p := MustParse(tcProgramSrc)
	db := chainEDB(3000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := EvalCtx(ctx, p, db)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}
}

// TestChaosStreamingJoinFault injects at the streaming join iterator's
// per-row fault point: the evaluation must stop with a stage-tagged
// injected error, and a clean rerun over the same inputs must still
// reach the full fixpoint (no partial state cached across runs).
func TestChaosStreamingJoinFault(t *testing.T) {
	defer faultinject.Reset()
	defer SetEngine(SetEngine(EngineStreaming))
	p := MustParse(tcProgramSrc)
	db := chainEDB(8)
	faultinject.FailAt("ra.join", 2)
	_, err := Eval(p, db)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}

	faultinject.Reset()
	out, err := Eval(p, db)
	if err != nil {
		t.Fatalf("clean rerun: %v", err)
	}
	if got := len(out.Tuples("path")); got != 36 {
		t.Fatalf("clean rerun derived %d path facts, want 36", got)
	}
}

// TestStreamTuplesBudgetExceeded pins the streaming engine's work
// meter: rows pulled through the pipeline are charged against
// Budget.MaxStreamTuples, and blowing the cap surfaces as a
// stage-tagged *stage.BudgetError naming the stream-tuples dimension.
func TestStreamTuplesBudgetExceeded(t *testing.T) {
	defer SetEngine(SetEngine(EngineStreaming))
	p := MustParse(tcProgramSrc)
	db := chainEDB(150)
	b := &stage.Budget{MaxStreamTuples: 100}
	_, err := EvalCtx(stage.WithBudget(context.Background(), b), p, db)
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "stream-tuples" {
		t.Fatalf("err = %v, want *stage.BudgetError on stream-tuples", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}
	if b.StreamTuplesUsed() <= 100 {
		t.Fatalf("StreamTuplesUsed = %d, want > limit at the point of violation", b.StreamTuplesUsed())
	}

	// The same run completes untouched under no cap.
	if _, err := Eval(p, db); err != nil {
		t.Fatalf("uncapped rerun: %v", err)
	}
}

// TestEngineStatsCollector pins the stats plumbing: an evaluation run
// under a context-attached collector reports its streamed-row volume,
// pushdown-planned joins, and peak buffered tuples to that collector,
// and the process-wide counters advance by at least as much.
func TestEngineStatsCollector(t *testing.T) {
	defer SetEngine(SetEngine(EngineStreaming))
	defer SetMaxWorkers(SetMaxWorkers(4)) // force the parallel buffered path
	p := MustParse(tcProgramSrc)
	db := chainEDB(200) // large enough to clear parallelThreshold
	var c StatsCollector
	before := ReadEngineStats()
	if _, err := EvalCtx(WithStatsCollector(context.Background(), &c), p, db); err != nil {
		t.Fatal(err)
	}
	after := ReadEngineStats()
	snap := c.Snapshot()
	if snap.TuplesStreamed == 0 {
		t.Fatal("collector saw no streamed tuples")
	}
	if snap.JoinsPushedDown == 0 {
		t.Fatal("collector saw no pushed-down joins")
	}
	if snap.PeakBufferedTuples == 0 {
		t.Fatal("collector saw no peak buffered tuples from the parallel rounds")
	}
	if d := after.TuplesStreamed - before.TuplesStreamed; d < snap.TuplesStreamed {
		t.Fatalf("global streamed delta %d < collector's %d", d, snap.TuplesStreamed)
	}
	if d := after.JoinsPushedDown - before.JoinsPushedDown; d < snap.JoinsPushedDown {
		t.Fatalf("global pushdown delta %d < collector's %d", d, snap.JoinsPushedDown)
	}

	// A second evaluation without the collector must not leak into it.
	if _, err := Eval(p, db); err != nil {
		t.Fatal(err)
	}
	if again := c.Snapshot(); again != snap {
		t.Fatalf("collector changed without an attached run: %+v vs %+v", again, snap)
	}
}

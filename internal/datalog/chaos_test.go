package datalog

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// TestChaosGroundRuleFault injects at the grounder's per-rule point: the
// quasi-guarded evaluation must stop with a stage-tagged injected error,
// and a clean rerun over the same inputs must still produce the full
// answer (nothing cached across runs).
func TestChaosGroundRuleFault(t *testing.T) {
	defer faultinject.Reset()
	prog := MustParse(tdProgram)
	faultinject.FailAt("datalog.ground-rule", 1)
	_, err := EvalQuasiGuardedCtx(context.Background(), prog, chainTD(6), TDFuncDeps(1))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}

	faultinject.Reset()
	out, err := EvalQuasiGuardedCtx(context.Background(), prog, chainTD(6), TDFuncDeps(1))
	if err != nil {
		t.Fatalf("clean rerun: %v", err)
	}
	if !out.Has("accept") {
		t.Fatal("clean rerun lost the accept fact")
	}
}

// TestChaosStratumTaskFault injects inside the seminaive worker loop.
func TestChaosStratumTaskFault(t *testing.T) {
	defer faultinject.Reset()
	prog := MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	edb := NewDB()
	for i := 0; i < 8; i++ {
		edb.AddFact("edge", "v"+itoa(i), "v"+itoa(i+1))
	}
	faultinject.FailAt("datalog.stratum-task", 2)
	_, err := EvalCtx(context.Background(), prog, edb)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}

	faultinject.Reset()
	out, err := EvalCtx(context.Background(), prog, edb)
	if err != nil {
		t.Fatalf("clean rerun: %v", err)
	}
	if got := len(out.Tuples("path")); got != 36 {
		t.Fatalf("clean rerun derived %d path facts, want 36", got)
	}
}

// TestChaosStratumPanicContained pins panic containment in rule
// evaluation: a panicking builtin comes back as a stage-tagged
// *stage.PanicError, not a process crash.
func TestChaosStratumPanicContained(t *testing.T) {
	prog := MustParse(`boom(X) :- edge(X, Y), chaos_explode(X).`)
	RegisterBuiltin("chaos_explode", func(args []string) (bool, error) { panic("builtin bug") })
	edb := NewDB()
	edb.AddFact("edge", "a", "b")
	_, err := EvalCtx(context.Background(), prog, edb)
	var pe *stage.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *stage.PanicError", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}
}

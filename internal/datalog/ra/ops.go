package ra

import "repro/internal/faultinject"

// Scan streams the rows of a stored relation, projected to the TOut
// terms. Constant constraints are pushed into the relation's index via
// Probe; TSame constraints (repeated positions) are checked residually.
// The output row buffer is reused across Next calls.
type Scan struct {
	Rel   Relation
	Terms []Term
	Ctl   *Ctl

	started bool
	cand    Candidates
	pos     int
	pat     []int
	out     []int
}

// NewScan returns a scan of rel constrained and projected by terms.
func NewScan(rel Relation, terms []Term, ctl *Ctl) *Scan {
	return &Scan{Rel: rel, Terms: terms, Ctl: ctl, out: make([]int, 0, outCount(terms))}
}

// Reset rewinds the scan; the relation is re-snapshotted on the next
// Next call.
func (s *Scan) Reset() {
	s.started = false
	s.pos = 0
	s.cand.SetEmpty()
}

// Next returns the next matching row projected to the scan's output
// columns.
func (s *Scan) Next() (Row, bool, error) {
	if !s.started {
		s.started = true
		if s.pat == nil {
			s.pat = make([]int, len(s.Terms))
		}
		fillPattern(s.pat, s.Terms, nil)
		s.Rel.Probe(s.pat, &s.cand)
		s.pos = 0
	}
	for s.pos < s.cand.Len() {
		if err := s.Ctl.step(); err != nil {
			return nil, false, err
		}
		t := s.cand.At(s.pos)
		s.pos++
		if !matches(s.Terms, t, nil) {
			continue
		}
		s.out = s.out[:0]
		for i, tm := range s.Terms {
			if tm.Kind == TOut {
				s.out = append(s.out, t[i])
			}
		}
		s.Ctl.emit()
		return s.out, true, nil
	}
	return nil, false, nil
}

// LookupJoin is an index nested-loop join: for every input row it
// probes the stored relation with the pattern formed from the row's
// TCol columns and the TConst constants — the predicate-pushdown path —
// and appends each match's TOut columns to the input row. With no TOut
// terms it degenerates to a semijoin filter. Memory is O(1): one input
// row and one candidate bucket reference are live at a time.
type LookupJoin struct {
	Input Iterator
	Rel   Relation
	Terms []Term
	// Width is the input row width; output rows have Width+#TOut
	// columns (input columns first).
	Width int
	Ctl   *Ctl

	cur  Row
	cand Candidates
	pos  int
	pat  []int
	out  []int
}

// NewLookupJoin returns a lookup join of in against rel.
func NewLookupJoin(in Iterator, rel Relation, terms []Term, width int, ctl *Ctl) *LookupJoin {
	return &LookupJoin{
		Input: in, Rel: rel, Terms: terms, Width: width, Ctl: ctl,
		out: make([]int, 0, width+outCount(terms)),
	}
}

// Pushdown reports how many probe constraints (constants and join
// columns) the join pushes into the relation's index.
func (j *LookupJoin) Pushdown() int {
	n := 0
	for _, t := range j.Terms {
		if t.Kind == TConst || t.Kind == TCol {
			n++
		}
	}
	return n
}

// Reset rewinds the join and its input.
func (j *LookupJoin) Reset() {
	j.Input.Reset()
	j.cur = nil
	j.cand.SetEmpty()
	j.pos = 0
}

// Next returns the next joined row.
func (j *LookupJoin) Next() (Row, bool, error) {
	if j.pat == nil {
		j.pat = make([]int, len(j.Terms))
	}
	for {
		if j.cur == nil {
			row, ok, err := j.Input.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			if err := faultinject.Check("ra.join"); err != nil {
				return nil, false, err
			}
			j.cur = row
			fillPattern(j.pat, j.Terms, row)
			j.Rel.Probe(j.pat, &j.cand)
			j.pos = 0
		}
		for j.pos < j.cand.Len() {
			if err := j.Ctl.step(); err != nil {
				return nil, false, err
			}
			t := j.cand.At(j.pos)
			j.pos++
			if !matches(j.Terms, t, j.cur) {
				continue
			}
			j.out = append(j.out[:0], j.cur...)
			for i, tm := range j.Terms {
				if tm.Kind == TOut {
					j.out = append(j.out, t[i])
				}
			}
			j.Ctl.emit()
			return j.out, true, nil
		}
		j.cur = nil
	}
}

// HashJoin joins two input streams on pairwise-equal key columns by
// symmetric hashing: rows are pulled from both sides alternately, each
// arrival is inserted into its side's table and probed against the
// other side's, so matches stream out before either input is exhausted
// and cancellation stays responsive. Both sides are buffered (tracked
// through Ctl.Buffered) — use it only where a LookupJoin into a stored
// index is impossible: joining two derived streams, or the cross
// product of disconnected rule components (empty key).
//
// Output rows are the left columns followed by the right columns minus
// the right key columns (equal to the left key columns by definition).
// Emission order is deterministic for deterministic inputs: strict
// alternation, matches in buffer insertion order.
type HashJoin struct {
	Left, Right Iterator
	// LeftKey/RightKey are equal-length column lists; empty for a cross
	// join.
	LeftKey, RightKey []int
	// LeftWidth/RightWidth are the input row widths.
	LeftWidth, RightWidth int
	Ctl                   *Ctl

	lrows, rrows [][]int
	ltab, rtab   map[uint64][]int32
	rkeep        []int
	ldone, rdone bool
	pullLeft     bool
	// pending match state: the arrived row, the matching bucket of the
	// other side, and whether the arrival was from the left.
	pending     Row
	bucket      []int32
	bpos        int
	arrivedLeft bool
	out         []int
}

// NewHashJoin returns a symmetric hash join of l and r on the given key
// columns.
func NewHashJoin(l, r Iterator, lkey, rkey []int, lw, rw int, ctl *Ctl) *HashJoin {
	j := &HashJoin{
		Left: l, Right: r, LeftKey: lkey, RightKey: rkey,
		LeftWidth: lw, RightWidth: rw, Ctl: ctl,
	}
	keyed := make(map[int]bool, len(rkey))
	for _, c := range rkey {
		keyed[c] = true
	}
	for c := 0; c < rw; c++ {
		if !keyed[c] {
			j.rkeep = append(j.rkeep, c)
		}
	}
	j.out = make([]int, 0, lw+len(j.rkeep))
	j.init()
	return j
}

func (j *HashJoin) init() {
	j.ltab = map[uint64][]int32{}
	j.rtab = map[uint64][]int32{}
	j.lrows, j.rrows = nil, nil
	j.ldone, j.rdone = false, false
	j.pullLeft = true
	j.pending, j.bucket, j.bpos = nil, nil, 0
}

// Reset rewinds the join and both inputs, dropping the buffered rows.
func (j *HashJoin) Reset() {
	j.Left.Reset()
	j.Right.Reset()
	j.Ctl.buffer(-(len(j.lrows) + len(j.rrows)))
	j.init()
}

func hashKey(row Row, key []int) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, c := range key {
		h ^= uint64(row[c])
		h *= prime64
	}
	return h
}

func keysEqual(l Row, lkey []int, r Row, rkey []int) bool {
	for i, lc := range lkey {
		if l[lc] != r[rkey[i]] {
			return false
		}
	}
	return true
}

func (j *HashJoin) emitPair(l, r Row) Row {
	j.out = append(j.out[:0], l...)
	for _, c := range j.rkeep {
		j.out = append(j.out, r[c])
	}
	j.Ctl.emit()
	return j.out
}

// Next returns the next joined row.
func (j *HashJoin) Next() (Row, bool, error) {
	for {
		// Drain pending matches of the last arrival first.
		for j.bpos < len(j.bucket) {
			if err := j.Ctl.step(); err != nil {
				return nil, false, err
			}
			var l, r Row
			if j.arrivedLeft {
				l, r = j.pending, j.rrows[j.bucket[j.bpos]]
			} else {
				l, r = j.lrows[j.bucket[j.bpos]], j.pending
			}
			j.bpos++
			if !keysEqual(l, j.LeftKey, r, j.RightKey) {
				continue
			}
			return j.emitPair(l, r), true, nil
		}
		if j.ldone && j.rdone {
			return nil, false, nil
		}
		// Pull the next arrival, alternating sides while both live.
		fromLeft := j.pullLeft && !j.ldone || j.rdone
		j.pullLeft = !j.pullLeft
		var (
			row Row
			ok  bool
			err error
		)
		if fromLeft {
			row, ok, err = j.Left.Next()
		} else {
			row, ok, err = j.Right.Next()
		}
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if fromLeft {
				j.ldone = true
			} else {
				j.rdone = true
			}
			continue
		}
		if err := faultinject.Check("ra.join"); err != nil {
			return nil, false, err
		}
		if err := j.Ctl.step(); err != nil {
			return nil, false, err
		}
		// Buffer a copy (input rows are only valid until the next pull)
		// and set up the probe of the other side.
		cp := append(make([]int, 0, len(row)), row...)
		if fromLeft {
			h := hashKey(cp, j.LeftKey)
			j.ltab[h] = append(j.ltab[h], int32(len(j.lrows)))
			j.lrows = append(j.lrows, cp)
			j.bucket = j.rtab[h]
		} else {
			h := hashKey(cp, j.RightKey)
			j.rtab[h] = append(j.rtab[h], int32(len(j.rrows)))
			j.rrows = append(j.rrows, cp)
			j.bucket = j.ltab[h]
		}
		j.Ctl.buffer(1)
		j.pending, j.bpos, j.arrivedLeft = cp, 0, fromLeft
	}
}

// Select filters rows by a predicate — σ over anything the planner
// cannot push into a scan or probe, such as negated-atom and builtin
// checks.
type Select struct {
	Input Iterator
	Pred  func(Row) (bool, error)
	Ctl   *Ctl
}

// NewSelect returns a filter of in by pred.
func NewSelect(in Iterator, pred func(Row) (bool, error), ctl *Ctl) *Select {
	return &Select{Input: in, Pred: pred, Ctl: ctl}
}

// Reset rewinds the filter's input.
func (s *Select) Reset() { s.Input.Reset() }

// Next returns the next row satisfying the predicate.
func (s *Select) Next() (Row, bool, error) {
	for {
		row, ok, err := s.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if err := s.Ctl.step(); err != nil {
			return nil, false, err
		}
		keep, err := s.Pred(row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			s.Ctl.emit()
			return row, true, nil
		}
	}
}

// Project maps each input row to an output row of input columns (TCol)
// and constants (TConst) through one reused buffer — constant space
// regardless of stream length. Sinks that retain rows must copy them.
type Project struct {
	Input Iterator
	Cols  []Term
	Ctl   *Ctl

	out []int
}

// NewProject returns a projection of in to cols.
func NewProject(in Iterator, cols []Term, ctl *Ctl) *Project {
	return &Project{Input: in, Cols: cols, Ctl: ctl, out: make([]int, len(cols))}
}

// Reset rewinds the projection's input.
func (p *Project) Reset() { p.Input.Reset() }

// Next returns the next projected row.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, c := range p.Cols {
		if c.Kind == TConst {
			p.out[i] = c.Idx
		} else {
			p.out[i] = row[c.Idx]
		}
	}
	p.Ctl.emit()
	return p.out, true, nil
}

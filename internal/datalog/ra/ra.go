// Package ra implements pull-based streaming relational-algebra
// operators — selection, projection and joins over rows of interned
// constants — for the datalog engine's rule evaluator.
//
// The operators compose into left-deep trees that stream one row at a
// time: no operator materializes its input, with the single documented
// exception of HashJoin, which buffers both sides by construction (it
// exists for joins where no stored index can serve one side). Storage
// access goes through the Relation interface, and every constraint that
// can be decided from the row pattern alone — constants, join columns,
// repeated positions — is pushed into the Probe call, so an indexed
// store answers with a narrow candidate bucket instead of a scan. The
// memory contract is the point: a pipeline of Scan/LookupJoin/Select/
// Project holds O(1) rows regardless of stream length.
//
// Rows returned by Next are valid only until the next call to Next on
// the same iterator; operators (and sinks) that retain rows must copy
// them. All iterators are single-goroutine values.
package ra

// Row is a tuple of interned constants.
type Row = []int

// Iterator is a pull-based row stream. Next returns the next row with
// ok=true, or ok=false once the stream is exhausted or after an error.
// Reset rewinds the iterator (and its inputs) for a fresh pass; sources
// re-snapshot their relation on the first Next after a Reset.
type Iterator interface {
	Reset()
	Next() (Row, bool, error)
}

// TermKind classifies how one column of a scanned or probed relation is
// constrained and used. The kinds double as projection specs: Project
// columns are TConst or TCol.
type TermKind uint8

const (
	// TDrop leaves the column unconstrained and discards its value —
	// projection pushed all the way into the scan.
	TDrop TermKind = iota
	// TOut leaves the column unconstrained and appends its value as a
	// new output column (in positional order of the TOut terms).
	TOut
	// TConst constrains the column to equal the interned constant Idx.
	TConst
	// TCol constrains the column to equal input-row column Idx.
	TCol
	// TSame constrains the column to equal position Idx of the same
	// stored row (a repeated variable within one atom).
	TSame
)

// Term is one column constraint/use; see TermKind.
type Term struct {
	Kind TermKind
	Idx  int
}

// Relation is the minimal storage interface scans and lookup joins pull
// from. Implementations are read-only during iteration.
type Relation interface {
	// Rows returns a snapshot of all stored rows.
	Rows() [][]int
	// Probe fills c with candidate rows for the pattern, where
	// pattern[i] < 0 means "unbound" — served from an index on the
	// bound positions when the store has one. Candidates may be a
	// superset of the true matches; callers re-check the pattern.
	Probe(pattern []int, c *Candidates)
}

// Candidates is the zero-allocation answer to a Relation.Probe: either
// a direct row list or an index bucket (row numbers into a base array).
// A Probe implementation calls exactly one Set method; the zero value
// is empty.
type Candidates struct {
	rows [][]int
	idx  []int32
	base [][]int
	one  [1][]int
}

// SetRows answers with a direct row list.
func (c *Candidates) SetRows(rows [][]int) { c.rows, c.idx, c.base = rows, nil, nil }

// SetOne answers with a single row (an exact-match lookup hit).
func (c *Candidates) SetOne(row []int) {
	c.one[0] = row
	c.rows, c.idx, c.base = c.one[:1], nil, nil
}

// SetBucket answers with an index bucket of row numbers into base.
func (c *Candidates) SetBucket(idx []int32, base [][]int) { c.rows, c.idx, c.base = nil, idx, base }

// SetEmpty answers with no candidates.
func (c *Candidates) SetEmpty() { c.rows, c.idx, c.base = nil, nil, nil }

// Len reports the number of candidate rows.
func (c *Candidates) Len() int {
	if c.idx != nil {
		return len(c.idx)
	}
	return len(c.rows)
}

// At returns candidate i.
func (c *Candidates) At(i int) []int {
	if c.idx != nil {
		return c.base[c.idx[i]]
	}
	return c.rows[i]
}

// pollEvery is the number of operator steps between cooperative Check
// polls (a power of two; the counter is masked).
const pollEvery = 1024

// Ctl is the shared control block of one operator tree: cooperative
// cancellation/fault/budget polling plus streaming statistics. All
// fields are plain (an operator tree is single-goroutine); the owner
// snapshots them after the pull loop finishes. A nil *Ctl disables both
// polling and accounting.
type Ctl struct {
	// Check, when non-nil, is polled roughly every pollEvery operator
	// steps (candidate rows considered); a non-nil error aborts the
	// stream. The datalog executor wires context cancellation, the
	// stream-tuples budget flush and fault injection through it.
	Check func() error
	// Streamed counts rows emitted by all operators of the tree — the
	// total volume moved through the pipeline.
	Streamed int64
	// Buffered and PeakBuffered track rows currently / maximally held
	// by buffering operators (hash joins). Streaming-only trees keep
	// both at zero.
	Buffered, PeakBuffered int64
	tick                   uint
}

// step records one unit of operator work and polls Check on schedule.
func (c *Ctl) step() error {
	if c == nil {
		return nil
	}
	if c.tick++; c.tick&(pollEvery-1) == 0 && c.Check != nil {
		return c.Check()
	}
	return nil
}

// emit records one row leaving an operator.
func (c *Ctl) emit() {
	if c != nil {
		c.Streamed++
	}
}

// buffer records n rows (possibly negative) entering a buffering
// operator.
func (c *Ctl) buffer(n int) {
	if c == nil {
		return
	}
	c.Buffered += int64(n)
	if c.Buffered > c.PeakBuffered {
		c.PeakBuffered = c.Buffered
	}
}

// matches reports whether row satisfies the constraint terms against
// the given input row (nil for leaf scans).
func matches(terms []Term, row, input Row) bool {
	for i, t := range terms {
		switch t.Kind {
		case TConst:
			if row[i] != t.Idx {
				return false
			}
		case TCol:
			if row[i] != input[t.Idx] {
				return false
			}
		case TSame:
			if row[i] != row[t.Idx] {
				return false
			}
		}
	}
	return true
}

// fillPattern writes the probe pattern implied by terms: constants and
// input-column values are bound, everything else is -1. Repeated
// positions (TSame) stay unbound — Probe indexes cannot express them —
// and are enforced by the residual matches check.
func fillPattern(pat []int, terms []Term, input Row) {
	for i, t := range terms {
		switch t.Kind {
		case TConst:
			pat[i] = t.Idx
		case TCol:
			pat[i] = input[t.Idx]
		default:
			pat[i] = -1
		}
	}
}

// outCount returns the number of TOut terms.
func outCount(terms []Term) int {
	n := 0
	for _, t := range terms {
		if t.Kind == TOut {
			n++
		}
	}
	return n
}

package ra

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/faultinject"
)

// sliceRel is an unindexed Relation: Probe answers with every row, so
// operators exercise their residual filters.
type sliceRel [][]int

func (r sliceRel) Rows() [][]int { return r }

func (r sliceRel) Probe(_ []int, c *Candidates) { c.SetRows(r) }

// hashRel indexes rows on the first bound pattern position, answering
// probes with buckets — exercising the SetBucket/SetOne paths.
type hashRel struct {
	rows    [][]int
	buckets map[int][]int32 // value at indexed position → row numbers
	pos     int
}

func newHashRel(rows [][]int, pos int) *hashRel {
	r := &hashRel{rows: rows, buckets: map[int][]int32{}, pos: pos}
	for i, t := range rows {
		r.buckets[t[pos]] = append(r.buckets[t[pos]], int32(i))
	}
	return r
}

func (r *hashRel) Rows() [][]int { return r.rows }

func (r *hashRel) Probe(pattern []int, c *Candidates) {
	if pattern[r.pos] < 0 {
		c.SetRows(r.rows)
		return
	}
	c.SetBucket(r.buckets[pattern[r.pos]], r.rows)
}

func drain(t *testing.T, it Iterator) [][]int {
	t.Helper()
	var out [][]int
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, append([]int(nil), row...))
	}
}

func sorted(rows [][]int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got, want [][]int) {
	t.Helper()
	g, w := sorted(got), sorted(want)
	if len(g) != len(w) {
		t.Fatalf("got %v, want %v", g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("got %v, want %v", g, w)
		}
	}
}

func TestScanPushdownAndResidual(t *testing.T) {
	rel := sliceRel{{1, 2, 2}, {1, 3, 4}, {2, 5, 5}, {1, 6, 6}}
	// σ(col0 = 1 ∧ col1 = col2), π(col1): the TSame constraint is
	// residual, the constant is pushed into the probe pattern.
	s := NewScan(rel, []Term{{TConst, 1}, {TOut, 0}, {TSame, 1}}, nil)
	sameRows(t, drain(t, s), [][]int{{2}, {6}})
	// Reset replays the stream.
	s.Reset()
	sameRows(t, drain(t, s), [][]int{{2}, {6}})
}

func TestScanDropColumns(t *testing.T) {
	rel := sliceRel{{1, 9}, {2, 9}}
	s := NewScan(rel, []Term{{TOut, 0}, {TDrop, 0}}, nil)
	sameRows(t, drain(t, s), [][]int{{1}, {2}})
}

func TestLookupJoin(t *testing.T) {
	left := sliceRel{{1, 10}, {2, 20}, {3, 30}}
	right := newHashRel([][]int{{10, 100}, {20, 200}, {20, 201}, {99, 900}}, 0)
	ctl := &Ctl{}
	scan := NewScan(left, []Term{{TOut, 0}, {TOut, 0}}, ctl)
	join := NewLookupJoin(scan, right, []Term{{TCol, 1}, {TOut, 0}}, 2, ctl)
	if join.Pushdown() != 1 {
		t.Fatalf("pushdown = %d, want 1", join.Pushdown())
	}
	sameRows(t, drain(t, join), [][]int{{1, 10, 100}, {2, 20, 200}, {2, 20, 201}})
	if ctl.Streamed == 0 {
		t.Fatal("no rows counted as streamed")
	}
	if ctl.Buffered != 0 || ctl.PeakBuffered != 0 {
		t.Fatalf("lookup join buffered rows: %d peak %d", ctl.Buffered, ctl.PeakBuffered)
	}
}

func TestLookupJoinSemijoin(t *testing.T) {
	left := sliceRel{{1}, {2}, {3}}
	right := newHashRel([][]int{{1}, {3}}, 0)
	scan := NewScan(left, []Term{{TOut, 0}}, nil)
	join := NewLookupJoin(scan, right, []Term{{TCol, 0}}, 1, nil)
	sameRows(t, drain(t, join), [][]int{{1}, {3}})
}

func TestHashJoinSymmetric(t *testing.T) {
	l := NewScan(sliceRel{{1, 7}, {2, 8}, {3, 7}}, []Term{{TOut, 0}, {TOut, 0}}, nil)
	r := NewScan(sliceRel{{7, 70}, {8, 80}, {7, 71}}, []Term{{TOut, 0}, {TOut, 0}}, nil)
	ctl := &Ctl{}
	j := NewHashJoin(l, r, []int{1}, []int{0}, 2, 2, ctl)
	want := [][]int{{1, 7, 70}, {1, 7, 71}, {3, 7, 70}, {3, 7, 71}, {2, 8, 80}}
	sameRows(t, drain(t, j), want)
	if ctl.PeakBuffered != 6 {
		t.Fatalf("peak buffered = %d, want 6", ctl.PeakBuffered)
	}
	// Reset drops the buffers and replays identically.
	j.Reset()
	if ctl.Buffered != 0 {
		t.Fatalf("buffered after reset = %d", ctl.Buffered)
	}
	sameRows(t, drain(t, j), want)
}

func TestHashJoinCross(t *testing.T) {
	l := NewScan(sliceRel{{1}, {2}}, []Term{{TOut, 0}}, nil)
	r := NewScan(sliceRel{{7}, {8}}, []Term{{TOut, 0}}, nil)
	j := NewHashJoin(l, r, nil, nil, 1, 1, nil)
	sameRows(t, drain(t, j), [][]int{{1, 7}, {1, 8}, {2, 7}, {2, 8}})
}

func TestHashJoinDeterministicOrder(t *testing.T) {
	mk := func() *HashJoin {
		l := NewScan(sliceRel{{1}, {2}, {3}}, []Term{{TOut, 0}}, nil)
		r := NewScan(sliceRel{{2}, {3}, {4}}, []Term{{TOut, 0}}, nil)
		return NewHashJoin(l, r, []int{0}, []int{0}, 1, 1, nil)
	}
	a := fmt.Sprint(drain(t, mk()))
	for i := 0; i < 5; i++ {
		if b := fmt.Sprint(drain(t, mk())); b != a {
			t.Fatalf("order varies: %s vs %s", a, b)
		}
	}
}

func TestSelectAndProject(t *testing.T) {
	scan := NewScan(sliceRel{{1, 10}, {2, 20}, {3, 30}}, []Term{{TOut, 0}, {TOut, 0}}, nil)
	sel := NewSelect(scan, func(r Row) (bool, error) { return r[0] != 2, nil }, nil)
	proj := NewProject(sel, []Term{{TCol, 1}, {TConst, 42}}, nil)
	sameRows(t, drain(t, proj), [][]int{{10, 42}, {30, 42}})
}

func TestSelectError(t *testing.T) {
	boom := errors.New("boom")
	scan := NewScan(sliceRel{{1}}, []Term{{TOut, 0}}, nil)
	sel := NewSelect(scan, func(Row) (bool, error) { return false, boom }, nil)
	if _, _, err := sel.Next(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCtlCheckAborts(t *testing.T) {
	rows := make([][]int, 4*pollEvery)
	for i := range rows {
		rows[i] = []int{i}
	}
	stop := errors.New("stop")
	calls := 0
	ctl := &Ctl{Check: func() error { calls++; return stop }}
	s := NewScan(sliceRel(rows), []Term{{TOut, 0}}, ctl)
	for {
		_, ok, err := s.Next()
		if err != nil {
			if !errors.Is(err, stop) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("stream finished without polling Check")
		}
	}
	if calls != 1 {
		t.Fatalf("check calls = %d, want 1", calls)
	}
}

func TestJoinFaultInject(t *testing.T) {
	defer faultinject.Reset()
	faultinject.FailAt("ra.join", 1)
	left := sliceRel{{1}}
	right := newHashRel([][]int{{1}}, 0)
	join := NewLookupJoin(NewScan(left, []Term{{TOut, 0}}, nil), right, []Term{{TCol, 0}}, 1, nil)
	if _, _, err := join.Next(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

package datalog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/stage"
)

// TestEvalCtxCancelledBeforeStart pins the entry check: an already
// cancelled context fails immediately with a stage-tagged
// context.Canceled.
func TestEvalCtxCancelledBeforeStart(t *testing.T) {
	p := MustParse("path(X, Y) :- edge(X, Y).")
	db := NewDB()
	db.AddFact("edge", "a", "b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvalCtx(ctx, p, db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Eval {
		t.Fatalf("err = %v, want stage %q", err, stage.Eval)
	}
}

// TestEvalCtxDeadlineMidStratum pins the in-stratum poll: a transitive
// closure over a long chain (quadratically many derivations in one
// stratum) is stopped by a short deadline inside the stratum, not just
// between strata.
func TestEvalCtxDeadlineMidStratum(t *testing.T) {
	p := MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	db := NewDB()
	for i := 0; i < 3000; i++ {
		db.AddFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := EvalCtx(ctx, p, db)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Eval {
		t.Fatalf("err = %v, want stage %q", err, stage.Eval)
	}
}

// TestEvalQuasiGuardedCtxCancelled pins cancellation of the grounding
// phase of the quasi-guarded evaluator.
func TestEvalQuasiGuardedCtxCancelled(t *testing.T) {
	p := MustParse("path(X, Y) :- edge(X, Y).")
	db := NewDB()
	db.AddFact("edge", "a", "b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvalQuasiGuardedCtx(ctx, p, db, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Eval {
		t.Fatalf("err = %v, want stage %q", err, stage.Eval)
	}
}

// TestEvalCtxNilSafeWithoutContext pins that the non-ctx entry points
// still work (they delegate to context.Background and never poll).
func TestEvalCtxNilSafeWithoutContext(t *testing.T) {
	p := MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	db := NewDB()
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "b", "c")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("path", "a", "c") {
		t.Fatal("transitive closure incomplete")
	}
}

package datalog

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// Fact is one extensional edit for ApplyDelta: a ground fact given by
// constant names.
type Fact struct {
	Pred string
	Args []string
}

// DeltaStats summarizes one ApplyDelta run.
type DeltaStats struct {
	EDBInserted int // extensional facts actually inserted (absent before)
	EDBDeleted  int // extensional facts actually deleted (present before)
	Overdeleted int // intensional facts removed by the over-delete phase
	Rederived   int // overdeleted facts restored by the targeted re-derive pass
	Derived     int // intensional facts added by insertion propagation
}

// ErrDeltaUnsupported marks programs or edits outside the incremental
// engine's supported fragment; callers fall back to a cold Eval.
var ErrDeltaUnsupported = errors.New("datalog: incremental delta unsupported")

// ApplyDelta is ApplyDeltaCtx with a background context.
func ApplyDelta(p *Program, db *DB, ins, del []Fact) (DeltaStats, error) {
	return ApplyDeltaCtx(context.Background(), p, db, ins, del)
}

// ApplyDeltaCtx incrementally maintains a materialized least fixpoint
// under extensional edits: db must be the result of a previous
// Eval(p, edb) (the EDB plus every derived fact), and on success it is
// mutated in place to equal Eval(p, edb − del + ins). Insertions are
// propagated semi-naively with the edit delta as the seed; retractions
// use DRed (over-delete every derivation that consumed a deleted fact,
// then re-derive what has an intact alternative support), both phases
// reusing the compiled rule machinery — under the streaming engine the
// insertion rounds run through the same cached rulePlans as Eval, with
// the delta relation as the scan input.
//
// Both phases are consumer-driven: tasks are scheduled per delta tuple
// through an index over the rules' body occurrences, so the cost is
// proportional to the dirty cone of the edit, not to the program —
// compiled MSO programs have thousands of strata and mostly-ground rule
// bodies, and a single-tuple edit must not visit them all. The index
// (with its compiled rules, stratification, and validation) is cached on
// db across calls, keyed by program identity and engine: the program
// must not be mutated between calls, and calls sharing a db must not
// run concurrently — both already required by the in-place maintenance
// contract.
//
// Supported fragment: edits must target extensional predicates, and
// negation may only be applied to extensional predicates (the paper's
// programs and every compiled MSO program satisfy this; Theorem 4.5's
// constructions negate only τ-atoms). Outside the fragment the sentinel
// ErrDeltaUnsupported is returned and db is left unchanged.
//
// On any other error (cancellation, budget, injected fault) db may be
// left mid-maintenance and must be discarded by the caller.
func ApplyDeltaCtx(ctx context.Context, p *Program, db *DB, ins, del []Fact) (DeltaStats, error) {
	var stats DeltaStats
	if err := faultinject.Check("datalog.delta"); err != nil {
		return stats, stage.Wrap(stage.Eval, err)
	}
	cfg := evalConfig{
		streaming: CurrentEngine() == EngineStreaming,
		budget:    stage.BudgetFrom(ctx),
		collector: statsCollectorFrom(ctx),
	}
	ix := db.deltaIx
	if ix == nil || ix.p != p || ix.cfg.streaming != cfg.streaming {
		var err error
		if ix, err = buildDeltaIndex(p, db, cfg.streaming); err != nil {
			return stats, err
		}
		db.deltaIx = ix
	}
	ix.ctx, ix.cfg = ctx, cfg
	arities := map[string]int{}
	for _, f := range append(append([]Fact(nil), ins...), del...) {
		if ix.intens[f.Pred] {
			return stats, fmt.Errorf("%w: edit targets intensional predicate %s", ErrDeltaUnsupported, f.Pred)
		}
		if IsBuiltin(f.Pred) {
			return stats, fmt.Errorf("%w: edit targets builtin %s", ErrDeltaUnsupported, f.Pred)
		}
		if r, ok := db.rels[f.Pred]; ok && r.arity != len(f.Args) {
			return stats, fmt.Errorf("datalog: delta fact %s/%d conflicts with stored arity %d", f.Pred, len(f.Args), r.arity)
		}
		if a, seen := arities[f.Pred]; seen && a != len(f.Args) {
			return stats, fmt.Errorf("datalog: delta facts disagree on arity of %s (%d vs %d)", f.Pred, a, len(f.Args))
		}
		arities[f.Pred] = len(f.Args)
	}

	// Net effective edit sets: deletions of facts actually present,
	// insertions of facts actually absent, with delete+re-insert (or
	// insert+delete) pairs cancelling out.
	delBy, insBy := map[string][][]int{}, map[string][][]int{}
	delKeys := map[string]int{} // fact key → index into delBy[pred]; -1 = cancelled
	for _, f := range del {
		t, ok := internedTuple(db, f, false)
		if !ok {
			continue // an unknown constant cannot appear in a stored fact
		}
		r := db.rels[f.Pred]
		if r == nil || !r.has(t) {
			continue
		}
		k := tupleKey(f.Pred, t)
		if _, dup := delKeys[k]; dup {
			continue
		}
		delKeys[k] = len(delBy[f.Pred])
		delBy[f.Pred] = append(delBy[f.Pred], t)
	}
	for _, f := range ins {
		t, _ := internedTuple(db, f, true)
		k := tupleKey(f.Pred, t)
		if i, dead := delKeys[k]; dead {
			if i >= 0 { // cancel the pending deletion instead of inserting
				delBy[f.Pred][i] = nil
				delKeys[k] = -1
			}
			continue
		}
		if r := db.rels[f.Pred]; r != nil && r.has(t) {
			continue
		}
		insBy[f.Pred] = append(insBy[f.Pred], t)
	}
	for pred := range delBy {
		live := delBy[pred][:0]
		for _, t := range delBy[pred] {
			if t != nil {
				live = append(live, t)
			}
		}
		if len(live) == 0 {
			delete(delBy, pred)
		} else {
			delBy[pred] = live
		}
	}
	for pred := range insBy {
		if len(insBy[pred]) == 0 {
			delete(insBy, pred)
		}
	}
	if len(delBy) == 0 && len(insBy) == 0 {
		return stats, nil
	}

	// Phase A — over-delete, against the physically untouched old state:
	// find every intensional fact with a derivation that consumed a
	// deleted fact (positive occurrence of a deletion) or relied on the
	// absence of an inserted fact (negated occurrence of an insertion).
	// allDel accumulates the deletion wavefront across strata; overdel
	// records the per-predicate over-delete sets (deduplicated).
	allDel := map[string]*relation{}
	insSeedRel := map[string]*relation{}
	for pred, tuples := range delBy {
		d := newDeltaRelation(len(tuples[0]))
		for _, t := range tuples {
			d.appendShared(t)
		}
		allDel[pred] = d
	}
	for pred, tuples := range insBy {
		d := newDeltaRelation(len(tuples[0]))
		for _, t := range tuples {
			d.appendShared(t)
		}
		insSeedRel[pred] = d
	}
	overdel := map[string]*relation{}
	if err := ix.overDelete(allDel, insSeedRel, overdel); err != nil {
		return stats, err
	}

	// Phase B — apply the physical edits: drop the over-deleted facts
	// and the EDB deletions, insert the EDB insertions.
	for pred, od := range overdel {
		if len(od.tuples) == 0 {
			continue
		}
		stats.Overdeleted += db.rels[pred].removeBatch(od.tuples)
	}
	for pred, tuples := range delBy {
		stats.EDBDeleted += db.rels[pred].removeBatch(tuples)
	}
	allIns := map[string]*relation{}
	for pred, tuples := range insBy {
		rel := db.rel(pred, len(tuples[0]))
		d := newDeltaRelation(len(tuples[0]))
		for _, t := range tuples {
			if rel.insertOwned(t) {
				d.appendShared(t)
				stats.EDBInserted++
			}
		}
		allIns[pred] = d
	}

	// Phase C — re-derive and propagate insertions against the new state:
	// restore over-deleted facts with an intact alternative derivation,
	// then run semi-naive insertion rounds with the accumulated insertion
	// delta as the seed (negated occurrences of EDB deletions seed
	// additional derivations first).
	n, err := ix.rederive(overdel, allDel, allIns)
	if err != nil {
		return stats, err
	}
	stats.Rederived = n.rederived
	stats.Derived = n.derived
	return stats, nil
}

// internedTuple maps a fact's constant names to IDs. With intern=false a
// name not already interned reports !ok instead of being added.
func internedTuple(db *DB, f Fact, intern bool) ([]int, bool) {
	t := make([]int, len(f.Args))
	for i, c := range f.Args {
		if intern {
			t[i] = db.Intern(c)
			continue
		}
		id, ok := db.byName[c]
		if !ok {
			return nil, false
		}
		t[i] = id
	}
	return t, true
}

// tupleKey is a map key for one ground fact over interned constants.
func tupleKey(pred string, t []int) string {
	b := make([]byte, 0, len(pred)+4*len(t))
	b = append(b, pred...)
	for _, v := range t {
		b = append(b, 0)
		b = fmt.Appendf(b, "%d", v)
	}
	return string(b)
}

// consumer is one body occurrence of a predicate: rule index into
// p.Rules plus the occurrence's position in that rule's body.
type consumer struct {
	ri, occ int
}

// consumerIndex maps delta tuples to the body occurrences they can
// match. Compiled MSO programs consist almost entirely of ground atoms,
// so a single-tuple edit usually matches a handful of occurrences out of
// thousands mentioning the predicate: fully ground occurrences are keyed
// by their exact tuple, occurrences with a constant first argument by
// (pred, first constant), and only the rest fall back to the
// per-predicate bucket.
type consumerIndex struct {
	exact map[string][]consumer // fully ground occurrence, keyed by tupleKey
	byC0  map[string][]consumer // constant first argument, keyed by (pred, c0)
	any   map[string][]consumer // everything else, keyed by predicate
}

func newConsumerIndex() consumerIndex {
	return consumerIndex{
		exact: map[string][]consumer{},
		byC0:  map[string][]consumer{},
		any:   map[string][]consumer{},
	}
}

func (cx *consumerIndex) addOcc(db *DB, pred string, args []Term, cn consumer) {
	ground := len(args) > 0
	for _, t := range args {
		if t.IsVar() {
			ground = false
			break
		}
	}
	switch {
	case ground:
		ids := make([]int, len(args))
		for i, t := range args {
			ids[i] = db.Intern(t.Const)
		}
		k := tupleKey(pred, ids)
		cx.exact[k] = append(cx.exact[k], cn)
	case len(args) > 0 && !args[0].IsVar():
		k := tupleKey(pred, []int{db.Intern(args[0].Const)})
		cx.byC0[k] = append(cx.byC0[k], cn)
	default:
		cx.any[pred] = append(cx.any[pred], cn)
	}
}

// forTuples calls emit for every consumer whose occurrence could match
// one of the predicate's delta tuples (conservatively for the byC0
// bucket: remaining constants are checked by the join itself).
func (cx *consumerIndex) forTuples(pred string, tuples [][]int, emit func(consumer)) {
	for _, cn := range cx.any[pred] {
		emit(cn)
	}
	for _, t := range tuples {
		if len(t) == 0 {
			continue
		}
		for _, cn := range cx.byC0[tupleKey(pred, t[:1])] {
			emit(cn)
		}
		for _, cn := range cx.exact[tupleKey(pred, t)] {
			emit(cn)
		}
	}
}

// deltaIndex is the scheduling index ApplyDelta caches on the database:
// the validated program's stratification, per-tuple consumer indexes for
// positive and negated occurrences, and compiled rule instances keyed by
// (rule, occurrence) — everything that is per-program, so repeated edits
// against a warm database pay only for their dirty cone.
type deltaIndex struct {
	ctx         context.Context
	p           *Program
	db          *DB
	cfg         evalConfig
	intens      map[string]bool
	strata      [][]string
	nStrata     int
	ruleStratum []int            // rule index → stratum of its head
	byHead      map[string][]int // head pred → rule indices (program order)
	pos         consumerIndex    // positive non-builtin occurrences
	neg         consumerIndex    // negated non-builtin occurrences
	plain       []*cRule         // compiled rules (full body), by rule index
	flipCache   map[consumer]*cRule
	instCache   map[consumer]*cRule
}

// buildDeltaIndex validates the program against the supported fragment
// and builds the scheduling index. Constants are interned up front so
// compilation inside the phases never races with DB readers.
func buildDeltaIndex(p *Program, db *DB, streaming bool) (*deltaIndex, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	intens := p.IntensionalPreds()
	for pred := range intens {
		if IsBuiltin(pred) {
			return nil, fmt.Errorf("datalog: builtin %s cannot be intensional", pred)
		}
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Negated && intens[a.Pred] {
				return nil, fmt.Errorf("%w: rule %s negates intensional predicate %s", ErrDeltaUnsupported, r, a.Pred)
			}
		}
	}
	strata, err := stratify(p)
	if err != nil {
		return nil, err
	}
	internProgramConsts(p, db)
	predStratum := make(map[string]int, len(intens))
	for s, preds := range strata {
		for _, pred := range preds {
			predStratum[pred] = s
		}
	}
	ix := &deltaIndex{
		p: p, db: db,
		cfg:         evalConfig{streaming: streaming},
		intens:      intens,
		strata:      strata,
		nStrata:     len(strata),
		ruleStratum: make([]int, len(p.Rules)),
		byHead:      headIndex(p),
		pos:         newConsumerIndex(),
		neg:         newConsumerIndex(),
		plain:       make([]*cRule, len(p.Rules)),
		flipCache:   map[consumer]*cRule{},
		instCache:   map[consumer]*cRule{},
	}
	for ri, r := range p.Rules {
		ix.ruleStratum[ri] = predStratum[r.Head.Pred]
		for occ, a := range r.Body {
			if IsBuiltin(a.Pred) {
				continue
			}
			cn := consumer{ri, occ}
			if a.Negated {
				ix.neg.addOcc(db, a.Pred, a.Args, cn)
			} else {
				ix.pos.addOcc(db, a.Pred, a.Args, cn)
			}
		}
	}
	return ix, nil
}

// plainRule, flipRule, and instance hand out compiled rule instances,
// cached across calls; the per-call context and budget plumbing is
// refreshed on every access since the cache outlives the call.
func (ix *deltaIndex) plainRule(ri int) *cRule {
	c := ix.plain[ri]
	if c == nil {
		c = compileRule(ix.p.Rules[ri], ix.db)
		ix.plain[ri] = c
	}
	c.ctx = ix.ctx
	return c
}

// flipRule compiles the rule with the negation at occ dropped, so the
// occurrence can be scanned positively over an edit delta: in phase A
// over the insertions that falsify ¬q(t̄), in phase C over the deletions
// that make it vacuously true.
func (ix *deltaIndex) flipRule(cn consumer) *cRule {
	c := ix.flipCache[cn]
	if c == nil {
		r := ix.p.Rules[cn.ri]
		r.Body = append([]Atom(nil), r.Body...)
		r.Body[cn.occ].Negated = false
		c = compileRule(r, ix.db)
		ix.flipCache[cn] = c
	}
	c.ctx = ix.ctx
	return c
}

// instance is the insertion-round variant: budget/stats plumbing and,
// under the streaming engine, the per-occurrence cached plan — the same
// machinery evalStratum gives its tasks.
func (ix *deltaIndex) instance(cn consumer) (*cRule, error) {
	c := ix.instCache[cn]
	if c == nil {
		c = compileRule(ix.p.Rules[cn.ri], ix.db)
		if ix.cfg.streaming {
			c.streaming = true
			plan, err := buildPlan(c, cn.occ)
			if err != nil {
				return nil, err
			}
			c.plan = plan
		}
		ix.instCache[cn] = c
	}
	c.ctx = ix.ctx
	c.budget = ix.cfg.budget
	c.collector = ix.cfg.collector
	return c, nil
}

// deltaView is a read-only delta relation over src.tuples[from:]; the
// slice is shared, so src must stay append-only while the view is live.
func deltaView(src *relation, from int) *relation {
	n := len(src.tuples)
	return &relation{arity: src.arity, tuples: src.tuples[from:n:n], indexes: map[uint64]*index{}}
}

// overDelete is DRed phase A: over-delete every intensional fact with a
// derivation that consumed a deleted fact (positive occurrence of a
// deletion) or relied on the absence of an inserted fact (negated
// occurrence, flipped positive over the insertion delta). All joins run
// against the old, physically untouched database.
//
// Scheduling is per delta tuple: a task (rule, occurrence) becomes
// pending exactly when a tuple its occurrence could match is deleted,
// and per-stratum watermarks keep the propagation semi-naive — a round
// scans only the tuples that arrived since the predicate's previous
// round in that stratum. Tasks only ever flow to the same or higher
// strata (stratification points dependencies downward), so one ascending
// pass suffices. Batches are sorted by (rule, occurrence), so discovery
// order is deterministic.
func (ix *deltaIndex) overDelete(allDel, insSeed, overdel map[string]*relation) error {
	type dtask struct {
		cn   consumer
		flip bool
	}
	pend := make([]map[dtask]bool, ix.nStrata)
	remaining := 0
	add := func(t dtask) {
		// Over-deletion only removes facts of the old fixpoint: a rule
		// whose head predicate is empty derived nothing, so nothing it
		// derived can die. On type-style programs (one populated type
		// predicate per bag out of dozens possible) this skips the vast
		// majority of a wave fact's consumers.
		if r := ix.db.rels[ix.p.Rules[t.cn.ri].Head.Pred]; r == nil || len(r.tuples) == 0 {
			return
		}
		s := ix.ruleStratum[t.cn.ri]
		m := pend[s]
		if m == nil {
			m = map[dtask]bool{}
			pend[s] = m
		}
		if !m[t] {
			m[t] = true
			remaining++
		}
	}
	// Seeds: consumers of the EDB deletions, and — flipped — negated
	// consumers of the EDB insertions. Batch sorting makes seed order
	// irrelevant, so iterating the edit maps directly is fine.
	for pred, d := range allDel {
		ix.pos.forTuples(pred, d.tuples, func(cn consumer) { add(dtask{cn, false}) })
	}
	for pred, d := range insSeed {
		ix.neg.forTuples(pred, d.tuples, func(cn consumer) { add(dtask{cn, true}) })
	}
	// collect routes one emitted head into the over-delete set; only
	// facts of the old fixpoint not yet over-deleted extend the wave.
	collect := func(pred string, arity int, wave map[string]*relation) func([]int) {
		rel := ix.db.rels[pred]
		od, ok := overdel[pred]
		if !ok {
			od = newRelation(arity)
			overdel[pred] = od
		}
		return func(t []int) {
			if rel == nil || !rel.has(t) {
				return
			}
			stored, added := od.insertRow(t)
			if !added {
				return
			}
			w := wave[pred]
			if w == nil {
				w = newDeltaRelation(arity)
				wave[pred] = w
			}
			w.appendShared(stored)
		}
	}
	for s := 0; s < ix.nStrata && remaining > 0; s++ {
		consumed := map[string]int{} // pred → allDel tuples this stratum has scanned
		for len(pend[s]) > 0 {
			if err := ix.ctx.Err(); err != nil {
				return stage.Wrap(stage.Eval, err)
			}
			batch := make([]dtask, 0, len(pend[s]))
			for t := range pend[s] {
				batch = append(batch, t)
			}
			remaining -= len(batch)
			pend[s] = nil
			sort.Slice(batch, func(a, b int) bool {
				if batch[a].cn != batch[b].cn {
					return batch[a].cn.ri < batch[b].cn.ri ||
						(batch[a].cn.ri == batch[b].cn.ri && batch[a].cn.occ < batch[b].cn.occ)
				}
				return !batch[a].flip && batch[b].flip
			})
			// One shared view per predicate: every in-stratum consumer a
			// deleted tuple can match is scheduled when the tuple arrives,
			// so a round advances the watermark for all of them at once.
			views := map[string]*relation{}
			wave := map[string]*relation{}
			for _, t := range batch {
				var c *cRule
				var src map[string]*relation
				if t.flip {
					c = ix.flipRule(t.cn)
					src = insSeed
				} else {
					pred := ix.p.Rules[t.cn.ri].Body[t.cn.occ].Pred
					d := allDel[pred]
					if d == nil || len(d.tuples) == 0 {
						continue
					}
					v, ok := views[pred]
					if !ok {
						if from := consumed[pred]; from < len(d.tuples) {
							v = deltaView(d, from)
						}
						consumed[pred] = len(d.tuples)
						views[pred] = v
					}
					if v == nil {
						continue // already scanned by an earlier round
					}
					c = ix.plainRule(t.cn.ri)
					src = views
				}
				head := ix.p.Rules[t.cn.ri].Head
				if err := c.eval(src, t.cn.occ, collect(head.Pred, len(head.Args), wave)); err != nil {
					return err
				}
			}
			// Merge the wave into the deletion wavefront and schedule its
			// consumers, in predicate order for determinism.
			preds := make([]string, 0, len(wave))
			for pred := range wave {
				preds = append(preds, pred)
			}
			sort.Strings(preds)
			for _, pred := range preds {
				d := wave[pred]
				if len(d.tuples) == 0 {
					continue
				}
				w := allDel[pred]
				if w == nil {
					allDel[pred] = d
				} else {
					for _, t := range d.tuples {
						w.appendShared(t)
					}
				}
				ix.pos.forTuples(pred, d.tuples, func(cn consumer) { add(dtask{cn, false}) })
			}
		}
	}
	return nil
}

type rederiveCounts struct {
	rederived int
	derived   int
}

// rederive is DRed phase C, against the new state: restore over-deleted
// facts that kept an alternative derivation, seed derivations a deletion
// unblocked (¬q(t̄) now holds for every net-deleted q-fact), and run
// semi-naive insertion rounds through the shared round runner — under
// the streaming engine these reuse per-rule cached plans with the delta
// relation as the scan input, exactly as Eval does. Newly derived facts
// are merged into allIns and their consumers scheduled, with the same
// per-tuple scheduling and per-stratum watermarks as phase A.
func (ix *deltaIndex) rederive(overdel, allDel, allIns map[string]*relation) (rederiveCounts, error) {
	var n rederiveCounts
	pend := make([]map[consumer]bool, ix.nStrata)
	add := func(cn consumer) {
		s := ix.ruleStratum[cn.ri]
		m := pend[s]
		if m == nil {
			m = map[consumer]bool{}
			pend[s] = m
		}
		m[cn] = true
	}
	scheduleIns := func(pred string, tuples [][]int) {
		ix.pos.forTuples(pred, tuples, add)
	}
	record := func(pred string, arity int, stored []int) {
		d := allIns[pred]
		if d == nil {
			d = newDeltaRelation(arity)
			allIns[pred] = d
		}
		d.appendShared(stored)
	}
	// Seeds: the EDB insertions (already merged into allIns by phase B)
	// and, per stratum, the rules a deletion unblocked at a negated
	// occurrence. Negated predicates are extensional in the supported
	// fragment, so their deltas are fixed and the flip tasks run once.
	for pred, d := range allIns {
		scheduleIns(pred, d.tuples)
	}
	unblocked := make([][]consumer, ix.nStrata)
	for pred, d := range allDel {
		ix.neg.forTuples(pred, d.tuples, func(cn consumer) {
			s := ix.ruleStratum[cn.ri]
			unblocked[s] = append(unblocked[s], cn)
		})
	}
	for s := 0; s < ix.nStrata; s++ {
		if err := ix.ctx.Err(); err != nil {
			return n, stage.Wrap(stage.Eval, err)
		}
		// Targeted re-derive: an over-deleted fact whose support never
		// touched a delta is restored here; facts derivable only through
		// other restored or inserted facts are recovered by the insertion
		// rounds below instead.
		for _, pred := range ix.strata[s] {
			od := overdel[pred]
			if od == nil || len(od.tuples) == 0 {
				continue
			}
			cs := make([]*cRule, 0, len(ix.byHead[pred]))
			for _, ri := range ix.byHead[pred] {
				cs = append(cs, ix.plainRule(ri))
			}
			rel := ix.db.rel(pred, od.arity)
			var restored [][]int
			for _, f := range od.tuples {
				ok, err := anyDerivation(cs, f)
				if err != nil {
					return n, err
				}
				if !ok {
					continue
				}
				if stored, added := rel.insertRow(f); added {
					n.rederived++
					record(pred, od.arity, stored)
					restored = append(restored, stored)
				}
			}
			if len(restored) > 0 {
				scheduleIns(pred, restored)
			}
		}
		// Derivations a deletion unblocked, in (rule, occurrence) order;
		// duplicates from several matching tuples run once (the relation
		// dedup makes reruns harmless, this just avoids them).
		sort.Slice(unblocked[s], func(a, b int) bool {
			return unblocked[s][a].ri < unblocked[s][b].ri ||
				(unblocked[s][a].ri == unblocked[s][b].ri && unblocked[s][a].occ < unblocked[s][b].occ)
		})
		var prev *consumer
		for i := range unblocked[s] {
			cn := unblocked[s][i]
			if prev != nil && *prev == cn {
				continue
			}
			prev = &unblocked[s][i]
			if err := ix.ctx.Err(); err != nil {
				return n, stage.Wrap(stage.Eval, err)
			}
			c := ix.flipRule(cn)
			head := ix.p.Rules[cn.ri].Head
			rel := ix.db.rel(head.Pred, len(head.Args))
			var derived [][]int
			err := c.eval(allDel, cn.occ, func(t []int) {
				if stored, added := rel.insertRow(t); added {
					n.derived++
					record(head.Pred, len(head.Args), stored)
					derived = append(derived, stored)
				}
			})
			if err != nil {
				return n, err
			}
			if len(derived) > 0 {
				scheduleIns(head.Pred, derived)
			}
		}
		// Semi-naive insertion rounds: each batch consumes, per predicate,
		// only the allIns tuples this stratum has not scanned yet.
		consumed := map[string]int{}
		for len(pend[s]) > 0 {
			if err := ix.ctx.Err(); err != nil {
				return n, stage.Wrap(stage.Eval, err)
			}
			batch := make([]consumer, 0, len(pend[s]))
			for cn := range pend[s] {
				batch = append(batch, cn)
			}
			pend[s] = nil
			sort.Slice(batch, func(a, b int) bool {
				return batch[a].ri < batch[b].ri ||
					(batch[a].ri == batch[b].ri && batch[a].occ < batch[b].occ)
			})
			views := map[string]*relation{}
			total := 0
			var tasks []stratumTask
			for _, cn := range batch {
				pred := ix.p.Rules[cn.ri].Body[cn.occ].Pred
				d := allIns[pred]
				if d == nil || len(d.tuples) == 0 {
					continue
				}
				v, ok := views[pred]
				if !ok {
					if from := consumed[pred]; from < len(d.tuples) {
						v = deltaView(d, from)
						total += len(d.tuples) - from
					}
					consumed[pred] = len(d.tuples)
					views[pred] = v
				}
				if v == nil {
					continue // already scanned by an earlier round
				}
				c, err := ix.instance(cn)
				if err != nil {
					return n, err
				}
				tasks = append(tasks, stratumTask{prog: c, occ: cn.occ})
			}
			if len(tasks) == 0 {
				continue
			}
			next, err := runStratumRound(ix.ctx, tasks, views, ix.db, total)
			if err != nil {
				return n, err
			}
			preds := make([]string, 0, len(next))
			for pred := range next {
				preds = append(preds, pred)
			}
			sort.Strings(preds)
			for _, pred := range preds {
				d := next[pred]
				if len(d.tuples) == 0 {
					continue
				}
				n.derived += len(d.tuples)
				a := allIns[pred]
				if a == nil {
					allIns[pred] = d
				} else {
					for _, t := range d.tuples {
						a.appendShared(t)
					}
				}
				scheduleIns(pred, d.tuples)
			}
		}
	}
	return n, nil
}

// anyDerivation reports whether any of the compiled rules (all sharing
// one head predicate) derives the fact in the database's current state.
func anyDerivation(rules []*cRule, fact []int) (bool, error) {
	for _, c := range rules {
		ok, err := c.derives(fact)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// derives reports whether the rule derives the given head fact in the
// database's current state: head arguments are unified with the fact up
// front and the body enumeration stops at the first witness.
func (c *cRule) derives(fact []int) (bool, error) {
	for i, a := range c.head {
		if a.slot < 0 {
			if a.c != fact[i] {
				return false, nil
			}
			continue
		}
		if v := c.binding[a.slot]; v >= 0 && v != fact[i] {
			for j := range c.binding {
				c.binding[j] = -1
			}
			return false, nil
		}
		c.binding[a.slot] = fact[i]
	}
	found := false
	c.deltaOcc = -1
	c.emit = func([]int) {
		found = true
		c.stopped = true
	}
	for i := range c.body {
		a := &c.body[i]
		if a.builtin {
			continue
		}
		a.rel = c.db.rels[a.pred]
	}
	err := c.step(0)
	c.stopped = false
	for j := range c.binding {
		c.binding[j] = -1
	}
	return found, err
}

package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chainTD builds a τ_td-like EDB describing a chain of tree nodes with
// width-1 bags over elements, for exercising the quasi-guarded machinery.
func chainTD(n int) *DB {
	db := NewDB()
	node := func(i int) string { return "s" + itoa(i) }
	elem := func(i int) string { return "x" + itoa(i) }
	for i := 0; i < n; i++ {
		args := []string{node(i), elem(i), elem(i + 1)}
		db.AddFact("bag", args...)
		if i == 0 {
			db.AddFact("leaf", node(i))
		} else {
			db.AddFact("child1", node(i-1), node(i))
		}
		db.AddFact("e", elem(i), elem(i+1))
	}
	db.AddFact("root", node(n-1))
	return db
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

// tdProgram is a small monadic program over τ_td in the style of
// Theorem 4.5's output: types propagate bottom-up along child1.
const tdProgram = `
theta0(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
theta0(V) :- bag(V, X0, X1), child1(V1, V), theta0(V1), bag(V1, Y0, Y1), e(X0, X1).
accept :- root(V), theta0(V).
`

func TestQuasiGuardsDetection(t *testing.T) {
	p := MustParse(tdProgram)
	guards, err := QuasiGuards(p, TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(guards) != 3 {
		t.Fatalf("guards = %v", guards)
	}
	for ri, g := range guards {
		if g < 0 {
			t.Fatalf("rule %d got guard %d", ri, g)
		}
	}

	// Without the functional dependencies the program has no quasi-guard.
	if _, err := QuasiGuards(p, nil); err == nil {
		t.Fatal("rules accepted as quasi-guarded without FDs")
	}

	// A genuinely unguarded rule is rejected even with FDs.
	bad := MustParse(`p(X) :- q(X), r(Y).`)
	if _, err := QuasiGuards(bad, TDFuncDeps(1)); err == nil {
		t.Fatal("cross product accepted as quasi-guarded")
	}

	// Ground rules are trivially quasi-guarded.
	ground := MustParse(`p(a) :- q(a).`)
	guards, err = QuasiGuards(ground, nil)
	if err != nil {
		t.Fatal(err)
	}
	if guards[0] != -2 {
		t.Fatalf("ground rule guard = %d", guards[0])
	}
}

func TestEvalQuasiGuardedChain(t *testing.T) {
	p := MustParse(tdProgram)
	db := chainTD(12)
	out, err := EvalQuasiGuarded(p, db, TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("accept") {
		t.Fatal("accept not derived")
	}
	if got := out.Count("theta0"); got != 12 {
		t.Fatalf("|theta0| = %d, want 12", got)
	}
	// Remove one edge fact: the chain of types must break.
	db2 := chainTD(12)
	db3 := NewDB()
	for _, pred := range db2.Preds() {
		for _, tup := range db2.Tuples(pred) {
			if pred == "e" && tup[0] == "x5" {
				continue
			}
			db3.AddFact(pred, tup...)
		}
	}
	out, err = EvalQuasiGuarded(p, db3, TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Has("accept") {
		t.Fatal("accept derived despite broken chain")
	}
}

func TestGroundSizeLinear(t *testing.T) {
	p := MustParse(tdProgram)
	g1, err := Ground(p, chainTD(20), TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Ground(p, chainTD(40), TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the data should roughly double the ground program
	// (Theorem 4.4: |P'| = O(|P|·|A|)).
	if g2.Size() > 3*g1.Size() {
		t.Fatalf("ground size grew superlinearly: %d → %d", g1.Size(), g2.Size())
	}
	if g2.NumAtoms() <= g1.NumAtoms() {
		t.Fatal("atom count did not grow with data")
	}
}

func TestGroundRejectsIntensionalNegation(t *testing.T) {
	p := MustParse(`
a(X) :- base(X).
b(X) :- base(X), not a(X).
`)
	if _, err := Ground(p, NewDB(), nil); err == nil {
		t.Fatal("intensional negation accepted by quasi-guarded evaluation")
	}
}

func TestGroundNegatedExtensional(t *testing.T) {
	p := MustParse(`
good(V) :- bag(V, X0, X1), not broken(V).
accept :- root(V), good(V).
`)
	db := chainTD(5)
	db.AddFact("broken", "s2")
	out, err := EvalQuasiGuarded(p, db, TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Has("good", "s2") {
		t.Fatal("negated extensional atom ignored")
	}
	if got := out.Count("good"); got != 4 {
		t.Fatalf("|good| = %d, want 4", got)
	}
}

func TestGroundFactsHelper(t *testing.T) {
	p := MustParse(tdProgram)
	db := chainTD(3)
	g, err := Ground(p, db, TDFuncDeps(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Horn.Solve()
	facts := g.Facts(truth, "theta0")
	if len(facts) != 3 {
		t.Fatalf("Facts = %v", facts)
	}
	if facts[0][0] != "s0" {
		t.Fatalf("Facts not sorted: %v", facts)
	}
}

// Property: the quasi-guarded evaluation agrees with semi-naive
// evaluation on random chain databases with random breakages.
func TestQuickQuasiGuardedAgreesWithSeminaive(t *testing.T) {
	p := MustParse(tdProgram)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		full := chainTD(n)
		db := NewDB()
		for _, pred := range full.Preds() {
			for _, tup := range full.Tuples(pred) {
				if pred == "e" && rng.Intn(4) == 0 {
					continue // randomly drop edges
				}
				db.AddFact(pred, tup...)
			}
		}
		qg, err := EvalQuasiGuarded(p, db, TDFuncDeps(1))
		if err != nil {
			return false
		}
		sn, err := Eval(p, db)
		if err != nil {
			return false
		}
		if qg.Has("accept") != sn.Has("accept") {
			return false
		}
		if qg.Count("theta0") != sn.Count("theta0") {
			return false
		}
		for _, tup := range sn.Tuples("theta0") {
			if !qg.Has("theta0", tup...) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	if db.AddFact("p", "a") != true {
		t.Fatal("new fact not reported")
	}
	if db.AddFact("p", "a") != false {
		t.Fatal("duplicate fact reported as new")
	}
	if db.Has("p", "zz") || db.Has("q", "a") {
		t.Fatal("Has wrong")
	}
	if db.NumFacts() != 1 || db.NumConsts() != 1 {
		t.Fatal("counts wrong")
	}
	if db.ConstName(0) != "a" || db.ConstName(99) != "#99" {
		t.Fatal("ConstName wrong")
	}
	c := db.Clone()
	c.AddFact("p", "b")
	if db.Has("p", "b") {
		t.Fatal("Clone shares state")
	}
	if got := FormatBindings("p", c.Tuples("p")); got != "p(a).\np(b)." {
		t.Fatalf("FormatBindings = %q", got)
	}
}

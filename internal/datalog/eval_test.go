package datalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	p := MustParse(`
% transitive closure
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
edge(a, b). edge(b, c).
flag.
good(X) :- node(X), not bad(X).
node(a). node(b).
`)
	if len(p.Rules) != 8 {
		t.Fatalf("parsed %d rules", len(p.Rules))
	}
	if got := p.Rules[0].String(); got != "path(X,Y) :- edge(X,Y)." {
		t.Fatalf("String = %q", got)
	}
	if got := p.Rules[4].String(); got != "flag." {
		t.Fatalf("String = %q", got)
	}
	if !strings.Contains(p.Rules[5].String(), "not bad(X)") {
		t.Fatalf("negation lost: %s", p.Rules[5])
	}
	// Reparse the printed program.
	if _, err := Parse(p.String()); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X) :- q(X)",           // missing period
		"p(X :- q(X).",           // missing paren
		"p(X) :- .",              // empty body atom
		"p(X).",                  // unsafe fact (head var, no body)
		"p(X) :- not q(X).",      // unsafe: X only in negation
		"not p(a).",              // negated head
		"p(a) :- q(a), q(a,b).",  // inconsistent arity
		"p(X) :- q(Y).",          // unsafe head variable
		"p(X) :- q(X), lt(X,Z).", // unsafe builtin variable
		"p(&).",                  // bad character
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	p := MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	db := NewDB()
	// A chain of 10 nodes.
	names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "n9"}
	for i := 0; i+1 < len(names); i++ {
		db.AddFact("edge", names[i], names[i+1])
	}
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Count("path"); got != 45 {
		t.Fatalf("|path| = %d, want 45", got)
	}
	if !out.Has("path", "n0", "n9") || out.Has("path", "n9", "n0") {
		t.Fatal("path contents wrong")
	}
	// Input DB untouched.
	if db.Count("path") != 0 {
		t.Fatal("Eval mutated input database")
	}
}

func TestSameGeneration(t *testing.T) {
	// Classic nonlinear recursion.
	p := MustParse(`
sg(X, X) :- person(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
`)
	db := NewDB()
	for _, pr := range [][2]string{{"b1", "a"}, {"b2", "a"}, {"c1", "b1"}, {"c2", "b2"}} {
		db.AddFact("par", pr[0], pr[1])
	}
	for _, n := range []string{"a", "b1", "b2", "c1", "c2"} {
		db.AddFact("person", n)
	}
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("sg", "b1", "b2") || !out.Has("sg", "c1", "c2") {
		t.Fatal("same-generation facts missing")
	}
	if out.Has("sg", "b1", "c1") {
		t.Fatal("wrong generation derived")
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := MustParse(`
reach(X) :- start(X).
reach(Y) :- reach(X), edge(X, Y).
unreach(X) :- node(X), not reach(X).
`)
	db := NewDB()
	db.AddFact("start", "a")
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "c", "d")
	for _, n := range []string{"a", "b", "c", "d"} {
		db.AddFact("node", n)
	}
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("unreach", "c") || !out.Has("unreach", "d") {
		t.Fatal("unreach missing")
	}
	if out.Has("unreach", "a") || out.Has("unreach", "b") {
		t.Fatal("unreach wrong")
	}
}

func TestUnstratifiable(t *testing.T) {
	p := MustParse(`
win(X) :- move(X, Y), not win(Y).
`)
	db := NewDB()
	db.AddFact("move", "a", "b")
	if _, err := Eval(p, db); err == nil || !strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("unstratifiable program accepted: %v", err)
	}
}

func TestMultipleStrata(t *testing.T) {
	p := MustParse(`
a(X) :- base(X).
b(X) :- base(X), not a(X).
c(X) :- base(X), not b(X).
`)
	db := NewDB()
	db.AddFact("base", "k")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	// a(k) holds, so b(k) fails, so c(k) holds.
	if !out.Has("a", "k") || out.Has("b", "k") || !out.Has("c", "k") {
		t.Fatal("strata evaluated in wrong order")
	}
}

func TestBuiltins(t *testing.T) {
	p := MustParse(`
less(X, Y) :- num(X), num(Y), lt(X, Y).
diff(X, Y) :- num(X), num(Y), neq(X, Y).
same(X, Y) :- num(X), num(Y), eq(X, Y).
le(X, Y) :- num(X), num(Y), lte(X, Y).
`)
	db := NewDB()
	for _, n := range []string{"2", "10"} {
		db.AddFact("num", n)
	}
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("less", "2", "10") || out.Has("less", "10", "2") {
		t.Fatal("numeric lt wrong")
	}
	if out.Count("diff") != 2 || out.Count("same") != 2 || out.Count("le") != 3 {
		t.Fatalf("builtin counts wrong: %d %d %d", out.Count("diff"), out.Count("same"), out.Count("le"))
	}
}

func TestZeroAryGoal(t *testing.T) {
	p := MustParse(`
success :- root(V), good(V).
good(X) :- mark(X).
`)
	db := NewDB()
	db.AddFact("root", "r")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Has("success") {
		t.Fatal("success derived without support")
	}
	db.AddFact("mark", "r")
	out, err = Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("success") {
		t.Fatal("success not derived")
	}
}

func TestConstantsInRules(t *testing.T) {
	p := MustParse(`
hit(X) :- edge(a, X).
special :- edge(a, b).
`)
	db := NewDB()
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "c", "d")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("hit", "b") || out.Has("hit", "d") || !out.Has("special") {
		t.Fatal("constant matching wrong")
	}
}

func TestRepeatedVariable(t *testing.T) {
	p := MustParse(`
loop(X) :- edge(X, X).
`)
	db := NewDB()
	db.AddFact("edge", "a", "a")
	db.AddFact("edge", "a", "b")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("loop", "a") || out.Count("loop") != 1 {
		t.Fatal("repeated variable unification wrong")
	}
}

func TestIsMonadic(t *testing.T) {
	mono := MustParse(`
good(X) :- e(X, Y), mark(Y).
mark(X) :- seed(X).
`)
	if !mono.IsMonadic() {
		t.Fatal("monadic program rejected")
	}
	poly := MustParse(`
p(X, Y) :- e(X, Y).
`)
	if poly.IsMonadic() {
		t.Fatal("binary intensional accepted as monadic")
	}
}

func TestFacts(t *testing.T) {
	p := MustParse(`
e(a, b).
r(X, Y) :- e(X, Y).
r(X, Y) :- r(X, Z), e(Z, Y).
e(b, c).
`)
	out, err := Eval(p, NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("r", "a", "c") {
		t.Fatal("facts in program not used")
	}
}

// Property: on random graphs, the engine's transitive closure agrees with
// a direct BFS computation.
func TestQuickTransitiveClosure(t *testing.T) {
	prog := MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		db := NewDB()
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + string(rune('0'+i))
			db.AddFact("node", names[i])
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			u, v := rng.Intn(n), rng.Intn(n)
			adj[u][v] = true
			db.AddFact("edge", names[u], names[v])
		}
		out, err := Eval(prog, db)
		if err != nil {
			return false
		}
		// Model: reachability in ≥1 step.
		reach := make([][]bool, n)
		for s := 0; s < n; s++ {
			reach[s] = make([]bool, n)
			var stack []int
			for v := 0; v < n; v++ {
				if adj[s][v] && !reach[s][v] {
					reach[s][v] = true
					stack = append(stack, v)
				}
			}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for v := 0; v < n; v++ {
					if adj[u][v] && !reach[s][v] {
						reach[s][v] = true
						stack = append(stack, v)
					}
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if out.Has("path", names[u], names[v]) != reach[u][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}

package datalog

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/horn"
	"repro/internal/stage"
)

// FuncDep declares that, in every tuple of Pred, the values at the From
// positions uniquely determine the values at the To positions. These are
// the "functional dependence" facts of Definition 4.3: e.g. in
// child1(v1, v), each of v1 and v determines the other, and in
// bag(v, x0, …, xw) the node v determines the entire bag.
type FuncDep struct {
	Pred string
	From []int
	To   []int
}

// TDFuncDeps returns the functional dependencies of the τ_td predicates of
// Section 4 for width w, which make the programs of Theorem 4.5
// quasi-guarded.
func TDFuncDeps(w int) []FuncDep {
	bagTo := make([]int, w+1)
	for i := range bagTo {
		bagTo[i] = i + 1
	}
	return []FuncDep{
		{Pred: "child1", From: []int{1}, To: []int{0}},
		{Pred: "child1", From: []int{0}, To: []int{1}},
		{Pred: "child2", From: []int{1}, To: []int{0}},
		{Pred: "child2", From: []int{0}, To: []int{1}},
		{Pred: "bag", From: []int{0}, To: bagTo},
	}
}

// QuasiGuards returns, for every rule, the index of a body atom that is a
// quasi-guard (Definition 4.3): an extensional positive atom such that
// every rule variable either occurs in it or is functionally dependent on
// its variables via the declared FuncDeps. Returns an error naming the
// first rule without a quasi-guard.
func QuasiGuards(p *Program, fds []FuncDep) ([]int, error) {
	intens := p.IntensionalPreds()
	fdsByPred := map[string][]FuncDep{}
	for _, fd := range fds {
		fdsByPred[fd.Pred] = append(fdsByPred[fd.Pred], fd)
	}
	guards := make([]int, len(p.Rules))
	for ri, r := range p.Rules {
		guards[ri] = -1
		allVars := map[string]bool{}
		for _, t := range r.Head.Args {
			if t.IsVar() {
				allVars[t.Var] = true
			}
		}
		for _, a := range r.Body {
			for _, t := range a.Args {
				if t.IsVar() {
					allVars[t.Var] = true
				}
			}
		}
		if len(allVars) == 0 {
			guards[ri] = -2 // ground rule: trivially quasi-guarded, no guard needed
			continue
		}
		for bi, b := range r.Body {
			if b.Negated || intens[b.Pred] || IsBuiltin(b.Pred) {
				continue
			}
			known := map[string]bool{}
			for _, t := range b.Args {
				if t.IsVar() {
					known[t.Var] = true
				}
			}
			// Close under functional dependence through positive
			// extensional body atoms.
			for changed := true; changed; {
				changed = false
				for _, a := range r.Body {
					if a.Negated || intens[a.Pred] {
						continue
					}
					for _, fd := range fdsByPred[a.Pred] {
						if len(a.Args) <= maxPos(fd) {
							continue
						}
						fromKnown := true
						for _, pos := range fd.From {
							if t := a.Args[pos]; t.IsVar() && !known[t.Var] {
								fromKnown = false
								break
							}
						}
						if !fromKnown {
							continue
						}
						for _, pos := range fd.To {
							if t := a.Args[pos]; t.IsVar() && !known[t.Var] {
								known[t.Var] = true
								changed = true
							}
						}
					}
				}
			}
			covered := true
			for v := range allVars {
				if !known[v] {
					covered = false
					break
				}
			}
			if covered {
				guards[ri] = bi
				break
			}
		}
		if guards[ri] == -1 {
			return nil, fmt.Errorf("datalog: rule %d has no quasi-guard: %s", ri, r)
		}
	}
	return guards, nil
}

func maxPos(fd FuncDep) int {
	m := 0
	for _, p := range fd.From {
		if p > m {
			m = p
		}
	}
	for _, p := range fd.To {
		if p > m {
			m = p
		}
	}
	return m
}

// GroundProgram is the propositional program produced by grounding a
// quasi-guarded datalog program over a database, together with the
// interning table of ground intensional atoms.
type GroundProgram struct {
	Horn  *horn.Program
	atoms []groundAtom
	index map[uint64][]int // atom hash → candidate IDs (collision bucket)
	db    *DB
	// budget, when non-nil, caps len(atoms) at MaxGroundAtoms: the
	// check fires per newly interned atom, so an over-budget grounding
	// aborts in memory proportional to the cap, not the blowup.
	budget    *stage.Budget
	budgetErr error
}

type groundAtom struct {
	pred  string
	tuple []int
}

// atomID interns a ground atom without building a string key: the
// (pred, tuple) pair is hashed FNV-style and candidates in the collision
// bucket are compared structurally. A budget violation is recorded in
// g.budgetErr (checked by the grounding loops) rather than returned, so
// the hot path keeps its int-only signature.
func (g *GroundProgram) atomID(pred string, tuple []int) int {
	h := fnvOffset64
	for i := 0; i < len(pred); i++ {
		h ^= uint64(pred[i])
		h *= fnvPrime64
	}
	h ^= uint64(len(pred)) // separate predicate bytes from tuple words
	h *= fnvPrime64
	for _, v := range tuple {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	for _, id := range g.index[h] {
		a := g.atoms[id]
		if a.pred == pred && equalTuple(a.tuple, tuple) {
			return id
		}
	}
	if g.budgetErr == nil {
		if err := g.budget.AddGroundAtoms(1); err != nil {
			g.budgetErr = stage.Wrap(stage.Eval, err)
		}
	}
	id := len(g.atoms)
	g.index[h] = append(g.index[h], id)
	g.atoms = append(g.atoms, groundAtom{pred: pred, tuple: append([]int(nil), tuple...)})
	return id
}

// NumAtoms returns the number of distinct ground intensional atoms.
func (g *GroundProgram) NumAtoms() int { return len(g.atoms) }

// Size returns the ground program size (|P'| of Theorem 4.4).
func (g *GroundProgram) Size() int { return g.Horn.Size() }

// Ground instantiates a quasi-guarded, semipositive program over the
// database (Theorem 4.4): for each rule, the quasi-guard is instantiated
// against the EDB and the remaining variables follow by functional
// dependence; fully bound extensional literals are evaluated immediately
// and intensional literals become propositional variables. The result has
// size O(|P|·|A|).
func Ground(p *Program, edb *DB, fds []FuncDep) (*GroundProgram, error) {
	return GroundCtx(context.Background(), p, edb, fds)
}

// GroundCtx is Ground with cancellation support: the per-rule loop and
// the instantiation recursion (every 1024 extension steps) poll ctx.
// A context error is returned wrapped in a *stage.Error tagged
// stage.Eval.
func GroundCtx(ctx context.Context, p *Program, edb *DB, fds []FuncDep) (*GroundProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	intens := p.IntensionalPreds()
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Negated && intens[a.Pred] {
				return nil, fmt.Errorf("datalog: quasi-guarded evaluation requires semipositive programs; rule %s negates intensional %s", r, a.Pred)
			}
		}
	}
	if _, err := QuasiGuards(p, fds); err != nil {
		return nil, err
	}
	g := &GroundProgram{Horn: &horn.Program{}, index: map[uint64][]int{}, db: edb, budget: stage.BudgetFrom(ctx)}
	for _, r := range p.Rules {
		if err := ctx.Err(); err != nil {
			return nil, stage.Wrap(stage.Eval, err)
		}
		if err := faultinject.Check("datalog.ground-rule"); err != nil {
			return nil, stage.Wrap(stage.Eval, err)
		}
		if err := groundRule(ctx, g, r, edb, intens); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// groundRule enumerates all EDB-consistent ground instances of the rule
// and emits Horn clauses over ground intensional atoms.
func groundRule(ctx context.Context, g *GroundProgram, r Rule, edb *DB, intens map[string]bool) error {
	binding := map[string]int{}
	processed := make([]bool, len(r.Body))
	matchBufs := make([][][]int, len(r.Body))
	var bodyLits []int
	var tick uint

	atomBound := func(a Atom) bool {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := binding[t.Var]; !ok {
					return false
				}
			}
		}
		return true
	}
	groundArgs := func(a Atom) []int {
		args := make([]int, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar() {
				args[i] = binding[t.Var]
			} else {
				args[i] = edb.Intern(t.Const)
			}
		}
		return args
	}

	var step func(done int) error
	step = func(done int) error {
		if tick++; tick&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return stage.Wrap(stage.Eval, err)
			}
		}
		if done == len(r.Body) {
			head := g.atomID(r.Head.Pred, groundArgs(r.Head))
			if g.budgetErr != nil {
				return g.budgetErr
			}
			g.Horn.AddClause(head, bodyLits...)
			return nil
		}
		// Fully bound atoms first: extensional ones are filters,
		// intensional ones become literals.
		for i, a := range r.Body {
			if processed[i] || !atomBound(a) {
				continue
			}
			args := groundArgs(a)
			var keep func() error
			switch {
			case IsBuiltin(a.Pred):
				names := make([]string, len(args))
				for j, id := range args {
					names[j] = edb.ConstName(id)
				}
				holds, err := callBuiltin(a.Pred, names)
				if err != nil {
					return err
				}
				if a.Negated {
					holds = !holds
				}
				if !holds {
					return nil
				}
				keep = func() error { return nil }
			case intens[a.Pred]:
				lit := g.atomID(a.Pred, args)
				if g.budgetErr != nil {
					return g.budgetErr
				}
				bodyLits = append(bodyLits, lit)
				keep = func() error {
					bodyLits = bodyLits[:len(bodyLits)-1]
					return nil
				}
			default:
				rel, ok := edb.rels[a.Pred]
				holds := ok && rel.has(args)
				if a.Negated {
					holds = !holds
				}
				if !holds {
					return nil
				}
				keep = func() error { return nil }
			}
			processed[i] = true
			err := step(done + 1)
			processed[i] = false
			if kerr := keep(); kerr != nil {
				return kerr
			}
			return err
		}
		// Otherwise join on the next positive extensional atom, preferring
		// one that shares a bound variable (functional dependence makes
		// these near-unique lookups in quasi-guarded programs).
		next := -1
		for i, a := range r.Body {
			if processed[i] || a.Negated || IsBuiltin(a.Pred) || intens[a.Pred] {
				continue
			}
			if next < 0 {
				next = i
			}
			sharesBound := false
			for _, t := range a.Args {
				if t.IsVar() {
					if _, ok := binding[t.Var]; ok {
						sharesBound = true
						break
					}
				}
			}
			if sharesBound {
				next = i
				break
			}
		}
		if next < 0 {
			// Only unbound intensional atoms remain; impossible for
			// validated quasi-guarded programs.
			return fmt.Errorf("datalog: cannot ground rule %s: intensional atom with unbound variables", r)
		}
		a := r.Body[next]
		rel := edb.rels[a.Pred]
		if rel == nil {
			return nil
		}
		pattern := make([]int, len(a.Args))
		for j, t := range a.Args {
			if t.IsVar() {
				if v, ok := binding[t.Var]; ok {
					pattern[j] = v
				} else {
					pattern[j] = -1
				}
			} else {
				pattern[j] = edb.Intern(t.Const)
			}
		}
		processed[next] = true
		matchBufs[next] = rel.match(pattern, matchBufs[next])
		for _, tuple := range matchBufs[next] {
			bound := make([]string, 0, len(a.Args))
			ok := true
			for j, t := range a.Args {
				if !t.IsVar() {
					continue
				}
				if v, known := binding[t.Var]; known {
					if tuple[j] != v {
						ok = false
						break
					}
				} else {
					binding[t.Var] = tuple[j]
					bound = append(bound, t.Var)
				}
			}
			if ok {
				if err := step(done + 1); err != nil {
					return err
				}
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
		processed[next] = false
		return nil
	}
	return step(0)
}

// EvalQuasiGuarded evaluates a quasi-guarded semipositive program by
// grounding (Ground) followed by linear-time unit resolution, realizing
// the O(|P|·|A|) bound of Theorem 4.4. The result contains the EDB plus
// all derived intensional facts.
func EvalQuasiGuarded(p *Program, edb *DB, fds []FuncDep) (*DB, error) {
	return EvalQuasiGuardedCtx(context.Background(), p, edb, fds)
}

// EvalQuasiGuardedCtx is EvalQuasiGuarded with cancellation support
// (see GroundCtx); unit resolution itself is linear and runs to
// completion once grounding has succeeded.
func EvalQuasiGuardedCtx(ctx context.Context, p *Program, edb *DB, fds []FuncDep) (*DB, error) {
	g, err := GroundCtx(ctx, p, edb, fds)
	if err != nil {
		return nil, err
	}
	truth := g.Horn.Solve()
	out := edb.Clone()
	for id, tv := range truth {
		if tv {
			a := g.atoms[id]
			out.AddTuple(a.pred, a.tuple)
		}
	}
	return out, nil
}

// Facts lists the true ground atoms of pred under the given truth
// assignment, sorted; a helper for tests and tools.
func (g *GroundProgram) Facts(truth []bool, pred string) [][]string {
	var out [][]string
	for id, tv := range truth {
		if !tv || g.atoms[id].pred != pred {
			continue
		}
		names := make([]string, len(g.atoms[id].tuple))
		for i, e := range g.atoms[id].tuple {
			names[i] = g.db.ConstName(e)
		}
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

package datalog

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

var tcProgram = MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)

func TestMagicBoundFirstArg(t *testing.T) {
	db := NewDB()
	// Two disjoint chains: a→b→c and p→q→r.
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"p", "q"}, {"q", "r"}} {
		db.AddFact("edge", e[0], e[1])
	}
	answers, err := QueryWithMagic(tcProgram, db, "path", []Term{C("a"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	got := map[string]bool{}
	for _, a := range answers {
		if a[0] != "a" {
			t.Fatalf("answer with wrong start: %v", a)
		}
		got[a[1]] = true
	}
	if !got["b"] || !got["c"] {
		t.Fatalf("answers = %v", answers)
	}

	// The rewriting must not derive facts about the irrelevant chain.
	rewritten, answer, err := MagicSet(tcProgram, "path", []Term{C("a"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Eval(rewritten, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tuple := range out.Tuples(answer) {
		if tuple[0] == "p" || tuple[0] == "q" {
			t.Fatalf("irrelevant fact derived: %v", tuple)
		}
	}
}

func TestMagicAllFree(t *testing.T) {
	db := NewDB()
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "b", "c")
	answers, err := QueryWithMagic(tcProgram, db, "path", []Term{V("X"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %v", answers)
	}
}

func TestMagicBothBound(t *testing.T) {
	db := NewDB()
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "b", "c")
	yes, err := QueryWithMagic(tcProgram, db, "path", []Term{C("a"), C("c")})
	if err != nil {
		t.Fatal(err)
	}
	if len(yes) != 1 {
		t.Fatalf("yes = %v", yes)
	}
	no, err := QueryWithMagic(tcProgram, db, "path", []Term{C("c"), C("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(no) != 0 {
		t.Fatalf("no = %v", no)
	}
}

func TestMagicRejects(t *testing.T) {
	neg := MustParse(`good(X) :- node(X), not bad(X).`)
	if _, _, err := MagicSet(neg, "good", []Term{C("a")}); err == nil {
		t.Fatal("negation accepted")
	}
	blt := MustParse(`small(X) :- num(X), lt(X, X).`)
	if _, _, err := MagicSet(blt, "small", []Term{V("X")}); err == nil {
		t.Fatal("builtin accepted")
	}
	if _, _, err := MagicSet(tcProgram, "edge", []Term{V("X"), V("Y")}); err == nil {
		t.Fatal("extensional goal accepted")
	}
}

func TestMagicNonlinearRecursion(t *testing.T) {
	// Same-generation: nonlinear recursion with the classic magic win.
	sg := MustParse(`
sg(X, X) :- person(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
`)
	db := NewDB()
	for _, p := range [][2]string{{"b1", "a"}, {"b2", "a"}, {"c1", "b1"}, {"c2", "b2"}} {
		db.AddFact("par", p[0], p[1])
	}
	for _, n := range []string{"a", "b1", "b2", "c1", "c2"} {
		db.AddFact("person", n)
	}
	answers, err := QueryWithMagic(sg, db, "sg", []Term{C("c1"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range answers {
		got[a[1]] = true
	}
	if !got["c1"] || !got["c2"] || len(got) != 2 {
		t.Fatalf("answers = %v", answers)
	}
}

// Property: magic-set answers equal plainly evaluated answers filtered by
// the query bindings, on random graphs and random query shapes.
func TestQuickMagicEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2
		db := NewDB()
		names := make([]string, n)
		for i := range names {
			names[i] = "v" + strconv.Itoa(i)
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			db.AddFact("edge", names[rng.Intn(n)], names[rng.Intn(n)])
		}
		var args []Term
		switch rng.Intn(3) {
		case 0:
			args = []Term{C(names[rng.Intn(n)]), V("Y")}
		case 1:
			args = []Term{V("X"), C(names[rng.Intn(n)])}
		default:
			args = []Term{C(names[rng.Intn(n)]), C(names[rng.Intn(n)])}
		}
		magic, err := QueryWithMagic(tcProgram, db, "path", args)
		if err != nil {
			return false
		}
		full, err := Eval(tcProgram, db)
		if err != nil {
			return false
		}
		want := map[string]bool{}
		for _, tuple := range full.Tuples("path") {
			ok := true
			for i, t := range args {
				if !t.IsVar() && tuple[i] != t.Const {
					ok = false
					break
				}
			}
			if ok {
				want[tuple[0]+"|"+tuple[1]] = true
			}
		}
		if len(magic) != len(want) {
			return false
		}
		for _, a := range magic {
			if !want[a[0]+"|"+a[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Fatal(err)
	}
}

// TestMagicNoDuplicateRules: a sub-goal occurring in several bodies with
// the same adornment used to emit identical magic rules repeatedly; the
// rewriting now deduplicates them.
func TestMagicNoDuplicateRules(t *testing.T) {
	p := MustParse(`
t(X, Y) :- e(X, Y).
t(X, Z) :- t(X, Y), t(Y, Z).
q(X, Y) :- t(X, Y), t(Y, X).
`)
	rewritten, _, err := MagicSet(p, "q", []Term{C("a"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rewritten.Rules {
		s := r.String()
		if seen[s] {
			t.Fatalf("duplicate rule in rewritten program: %s", s)
		}
		seen[s] = true
	}
	// Still answers correctly.
	db := NewDB()
	db.AddFact("e", "a", "b")
	db.AddFact("e", "b", "a")
	answers, err := QueryWithMagic(p, db, "q", []Term{C("a"), V("Y")})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %v, want a→a and a→b", answers)
	}
}

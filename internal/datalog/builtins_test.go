package datalog

import (
	"strconv"
	"testing"
)

func TestBuiltinBasics(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want bool
	}{
		{"eq", []string{"a", "a"}, true},
		{"neq", []string{"a", "b"}, true},
		{"lt", []string{"2", "10"}, true}, // numeric when both parse
		{"lt", []string{"b", "a"}, false}, // lexicographic otherwise
		{"lte", []string{"3", "3"}, true},
	} {
		got, err := callBuiltin(tc.name, tc.args)
		if err != nil || got != tc.want {
			t.Fatalf("%s(%v) = %v, %v; want %v", tc.name, tc.args, got, err, tc.want)
		}
	}
	if _, err := callBuiltin("nosuch", nil); err == nil {
		t.Fatal("unknown builtin did not error")
	}
	if _, err := callBuiltin("eq", []string{"a"}); err == nil {
		t.Fatal("arity error not reported")
	}
}

// TestRegisterBuiltinDuringEval registers builtins concurrently with a
// running evaluation whose rounds are large enough to take the parallel
// path. Run under -race (CI does) this pins the satellite fix: the
// builtins registry is guarded, so RegisterBuiltin may legally overlap
// Eval.
func TestRegisterBuiltinDuringEval(t *testing.T) {
	p := MustParse(`
path(X, Y) :- e(X, Y), neq(X, Y).
path(X, Z) :- path(X, Y), e(Y, Z).
`)
	db := NewDB()
	n := 200
	for i := 0; i < n-1; i++ {
		db.AddFact("e", "v"+strconv.Itoa(i), "v"+strconv.Itoa(i+1))
	}
	stop := make(chan struct{})
	regDone := make(chan struct{})
	go func() {
		defer close(regDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			name := "user_fn_" + strconv.Itoa(i%8)
			RegisterBuiltin(name, func(args []string) (bool, error) { return true, nil })
			i++
		}
	}()
	for round := 0; round < 3; round++ {
		out, err := Eval(p, db)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := out.Count("path"), n*(n-1)/2; got != want {
			t.Fatalf("round %d: %d path facts, want %d", round, got, want)
		}
	}
	close(stop)
	<-regDone
}

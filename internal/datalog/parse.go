package datalog

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Parse reads a datalog program in the conventional syntax:
//
//	% comments run to end of line
//	path(X, Y) :- edge(X, Y).
//	path(X, Z) :- path(X, Y), edge(Y, Z), not blocked(Y).
//	success :- root(V), colored(V).
//	edge(a, b).
//
// Identifiers starting with an upper-case letter or '_' are variables;
// everything else is a constant. "not" (or "\+") negates the following
// atom.
// Errors name the 1-based source line. A bug in the parser is recovered
// and returned as an error rather than escaping as a panic, so
// untrusted input can never crash a caller.
func Parse(src string) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("datalog: internal parser error: %v", r)
		}
	}()
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Program{}
	i := 0
	for i < len(toks) {
		rule, next, err := parseRule(toks, i)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, rule)
		i = next
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and fixed programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type token struct {
	kind string // "ident", "(", ")", ",", ".", ":-", "not"
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == '.':
			toks = append(toks, token{kind: string(c), line: line})
			i++
		case c == ':':
			if i+1 < len(src) && src[i+1] == '-' {
				toks = append(toks, token{kind: ":-", line: line})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: line %d: unexpected ':'", line)
			}
		case c == '\\':
			if i+1 < len(src) && src[i+1] == '+' {
				toks = append(toks, token{kind: "not", line: line})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: line %d: unexpected '\\'", line)
			}
		case isIdentRune(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			text := src[i:j]
			if text == "not" {
				toks = append(toks, token{kind: "not", line: line})
			} else {
				toks = append(toks, token{kind: "ident", text: text, line: line})
			}
			i = j
		default:
			return nil, fmt.Errorf("datalog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

func parseRule(toks []token, i int) (Rule, int, error) {
	head, i, err := parseAtom(toks, i, false)
	if err != nil {
		return Rule{}, 0, err
	}
	var body []Atom
	if i < len(toks) && toks[i].kind == ":-" {
		i++
		for {
			a, next, err := parseAtom(toks, i, true)
			if err != nil {
				return Rule{}, 0, err
			}
			body = append(body, a)
			i = next
			if i < len(toks) && toks[i].kind == "," {
				i++
				continue
			}
			break
		}
	}
	if i >= len(toks) || toks[i].kind != "." {
		ln := 0
		if i < len(toks) {
			ln = toks[i].line
		} else if len(toks) > 0 {
			ln = toks[len(toks)-1].line
		}
		return Rule{}, 0, fmt.Errorf("datalog: line %d: expected '.' at end of rule", ln)
	}
	return Rule{Head: head, Body: body}, i + 1, nil
}

// lineAt is the 1-based source line of toks[i], falling back to the
// last token's line when i is past the end (truncated input).
func lineAt(toks []token, i int) int {
	if i < len(toks) {
		return toks[i].line
	}
	if len(toks) > 0 {
		return toks[len(toks)-1].line
	}
	return 1
}

func parseAtom(toks []token, i int, allowNeg bool) (Atom, int, error) {
	neg := false
	if i < len(toks) && toks[i].kind == "not" {
		if !allowNeg {
			return Atom{}, 0, fmt.Errorf("datalog: line %d: negation not allowed here", toks[i].line)
		}
		neg = true
		i++
	}
	if i >= len(toks) || toks[i].kind != "ident" {
		return Atom{}, 0, fmt.Errorf("datalog: line %d: expected predicate name", lineAt(toks, i))
	}
	a := Atom{Pred: toks[i].text, Negated: neg}
	i++
	if i < len(toks) && toks[i].kind == "(" {
		i++
		for {
			if i >= len(toks) || toks[i].kind != "ident" {
				return Atom{}, 0, fmt.Errorf("datalog: line %d: expected term", lineAt(toks, i))
			}
			a.Args = append(a.Args, termOf(toks[i].text))
			i++
			if i < len(toks) && toks[i].kind == "," {
				i++
				continue
			}
			break
		}
		if i >= len(toks) || toks[i].kind != ")" {
			return Atom{}, 0, fmt.Errorf("datalog: line %d: expected ')'", lineAt(toks, i))
		}
		i++
	}
	return a, i, nil
}

func termOf(text string) Term {
	r := rune(text[0])
	if unicode.IsUpper(r) || r == '_' {
		return V(text)
	}
	return C(text)
}

// FormatBindings renders a relation's tuples for display, one fact per
// line, sorted.
func FormatBindings(pred string, tuples [][]string) string {
	lines := make([]string, 0, len(tuples))
	for _, t := range tuples {
		lines = append(lines, fmt.Sprintf("%s(%s).", pred, strings.Join(t, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

package datalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// naiveEval is a deliberately simple reference evaluator: stratified, but
// within each stratum it re-runs every rule in full until a whole pass
// derives nothing new (naive fixpoint, no deltas, no parallelism). The
// differential tests below hold the optimized semi-naive engine to it.
func naiveEval(p *Program, edb *DB) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := stratify(p)
	if err != nil {
		return nil, err
	}
	db := edb.Clone()
	for _, stratum := range strata {
		inStratum := map[string]bool{}
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var rules []Rule
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, r := range rules {
				err := evalRule(r, db, nil, -1, func(pred string, tuple []int) {
					if db.rel(pred, len(tuple)).insertOwned(tuple) {
						changed = true
					}
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}

// sameFacts compares two result databases predicate by predicate.
func sameFacts(t *testing.T, a, b *DB, context string) {
	t.Helper()
	preds := map[string]bool{}
	for _, p := range a.Preds() {
		preds[p] = true
	}
	for _, p := range b.Preds() {
		preds[p] = true
	}
	for p := range preds {
		ta, tb := a.Tuples(p), b.Tuples(p)
		if len(ta) == 0 && len(tb) == 0 {
			continue
		}
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("%s: %s differs:\n  got  %v\n  want %v", context, p, ta, tb)
		}
	}
}

// randStratifiedProgram generates a small random program over the EDB
// predicates e/2 and n/1 with intensional layers p/1 < q/1 < r/2:
// negation only reaches strictly lower layers or the EDB, so every
// generated program is stratified; heads and negated atoms only use
// variables bound by an earlier positive atom, so every program is safe.
func randStratifiedProgram(rng *rand.Rand) *Program {
	idb := []struct {
		pred  string
		arity int
		layer int
	}{{"p", 1, 0}, {"q", 1, 1}, {"r", 2, 2}}
	consts := []string{"a", "b", "c"}
	var rules []string
	nRules := 2 + rng.Intn(5)
	for i := 0; i < nRules; i++ {
		h := idb[rng.Intn(len(idb))]
		if rng.Intn(8) == 0 {
			// Ground fact rule.
			args := make([]string, h.arity)
			for j := range args {
				args[j] = consts[rng.Intn(len(consts))]
			}
			rules = append(rules, fmt.Sprintf("%s(%s, %s).", "r", args[0%h.arity], args[(h.arity-1)%h.arity]))
			continue
		}
		vars := []string{"X", "Y"}
		// The first atom is positive and binds both variables.
		binder := [...]string{"e(X, Y)", "e(Y, X)", "e(X, X), n(Y)", "n(X), n(Y)"}[rng.Intn(4)]
		body := []string{binder}
		term := func() string { // bound variable or constant
			if rng.Intn(3) == 0 {
				return consts[rng.Intn(len(consts))]
			}
			return vars[rng.Intn(len(vars))]
		}
		for extra := rng.Intn(3); extra > 0; extra-- {
			switch k := rng.Intn(4); {
			case k == 0: // positive EDB filter
				body = append(body, fmt.Sprintf("e(%s, %s)", term(), term()))
			case k == 1: // negated EDB
				body = append(body, fmt.Sprintf("not n(%s)", term()))
			case k == 2: // positive IDB, any layer (recursion allowed)
				o := idb[rng.Intn(len(idb))]
				args := make([]string, o.arity)
				for j := range args {
					args[j] = term()
				}
				body = append(body, o.pred+"("+args[0]+sec(args)+")")
			default: // negated IDB, strictly lower layer only
				if h.layer == 0 {
					body = append(body, fmt.Sprintf("not e(%s, %s)", term(), term()))
					continue
				}
				o := idb[rng.Intn(h.layer)]
				args := make([]string, o.arity)
				for j := range args {
					args[j] = term()
				}
				body = append(body, "not "+o.pred+"("+args[0]+sec(args)+")")
			}
		}
		hargs := make([]string, h.arity)
		for j := range hargs {
			hargs[j] = term()
		}
		rules = append(rules, fmt.Sprintf("%s(%s%s) :- %s.", h.pred, hargs[0], sec(hargs), joinBody(body)))
	}
	prog, err := Parse(joinRules(rules))
	if err != nil {
		return nil
	}
	return prog
}

func sec(args []string) string {
	if len(args) < 2 {
		return ""
	}
	return ", " + args[1]
}

func joinBody(atoms []string) string {
	s := atoms[0]
	for _, a := range atoms[1:] {
		s += ", " + a
	}
	return s
}

func joinRules(rules []string) string {
	s := ""
	for _, r := range rules {
		s += r + "\n"
	}
	return s
}

// TestDifferentialRandomPrograms is the satellite differential test: the
// semi-naive engine — under BOTH backends, the streaming relational-
// algebra pipeline and the materialized backtracking join — must agree
// with the naive reference evaluator on every randomized stratified
// program, so neither the storage/parallelism changes nor the streaming
// rebuild can silently change semantics. The reference itself always
// runs the materialized step() path (evalRule compiles without a plan),
// so the three-way comparison is never circular.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edb := func() *DB {
		db := NewDB()
		consts := []string{"a", "b", "c", "d", "f"}
		for i := 0; i < 10; i++ {
			db.AddFact("e", consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
		}
		for i := 0; i < 3; i++ {
			db.AddFact("n", consts[rng.Intn(len(consts))])
		}
		return db
	}
	defer SetEngine(SetEngine(EngineStreaming))
	tried, run := 0, 0
	for run < 250 && tried < 2500 {
		tried++
		p := randStratifiedProgram(rng)
		if p == nil || p.Validate() != nil {
			continue
		}
		run++
		db := edb()
		want, refErr := naiveEval(p, db)
		for _, eng := range []Engine{EngineStreaming, EngineMaterialized} {
			SetEngine(eng)
			got, err := Eval(p, db)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("program %v: %s engine disagrees with reference on error: %v vs %v", p, eng, err, refErr)
			}
			if err != nil {
				continue
			}
			sameFacts(t, got, want, fmt.Sprintf("program #%d engine=%s %v", run, eng, p))
		}
	}
	if run < 100 {
		t.Fatalf("generator too weak: only %d/%d candidates were valid programs", run, tried)
	}
}

// TestDifferentialKnownPrograms runs the same comparison on the classic
// fixed programs that stress recursion shapes the generator rarely hits.
func TestDifferentialKnownPrograms(t *testing.T) {
	cases := []string{
		"path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
		"sg(X, X) :- n(X).\nsg(X, Y) :- e(X, XP), sg(XP, YP), e(Y, YP).",
		"t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), t(Y, Z).",
		"odd(Y) :- n(X), e(X, Y), not n(Y).\nbad(X) :- n(X), not odd(X).",
		// Disconnected body components: forces the streaming planner's
		// symmetric hash join (cross product), with a filter on top.
		"pair(X, Y) :- n(X), n(Y), not e(X, Y).\ntri(X, Y) :- pair(X, Y), e(Y, X).",
		// Constant pushdown into probes, repeated variables in one atom.
		"loop(X) :- e(X, X).\nanchored(Y) :- e(v0, Y), not loop(Y).",
	}
	defer SetEngine(SetEngine(EngineStreaming))
	for _, src := range cases {
		p := MustParse(src)
		db := NewDB()
		names := make([]string, 12)
		for i := range names {
			names[i] = "v" + strconv.Itoa(i)
		}
		for i := 0; i+1 < len(names); i++ {
			db.AddFact("e", names[i], names[i+1])
			db.AddFact("n", names[i])
		}
		db.AddFact("e", names[len(names)-1], names[0]) // close the cycle
		want, err := naiveEval(p, db)
		if err != nil {
			t.Fatalf("%q (reference): %v", src, err)
		}
		for _, eng := range []Engine{EngineStreaming, EngineMaterialized} {
			SetEngine(eng)
			got, err := Eval(p, db)
			if err != nil {
				t.Fatalf("%q (%s): %v", src, eng, err)
			}
			sameFacts(t, got, want, fmt.Sprintf("%s: %s", eng, src))
		}
	}
}

// TestParallelDeterminism checks the determinism claim for both
// backends: the derived fact set is identical across worker counts,
// including runs big enough to actually take the parallel path (where
// the streaming backend pre-filters against the frozen head relation
// and merges reused per-task buffers in task order).
func TestParallelDeterminism(t *testing.T) {
	p := MustParse("path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).")
	db := NewDB()
	for i := 0; i < 300; i++ {
		db.AddFact("e", "v"+strconv.Itoa(i), "v"+strconv.Itoa(i+1))
	}
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	defer SetEngine(SetEngine(EngineStreaming))
	for _, eng := range []Engine{EngineStreaming, EngineMaterialized} {
		SetEngine(eng)
		SetMaxWorkers(1)
		serial, err := Eval(p, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 13} {
			SetMaxWorkers(workers)
			out, err := Eval(p, db)
			if err != nil {
				t.Fatal(err)
			}
			sameFacts(t, out, serial, fmt.Sprintf("engine=%s workers=%d", eng, workers))
		}
	}
}

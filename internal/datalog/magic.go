package datalog

import (
	"fmt"
	"strings"
)

// This file implements the magic-sets transformation — the "top-down
// guidance in the style of magic sets" the paper lists among planned
// optimizations (Section 6, Further improvements): bottom-up evaluation
// of the rewritten program only derives facts relevant to a given query,
// mimicking top-down goal direction.
//
// The transformation handles positive datalog (no negation, no builtins)
// with full left-to-right sideways information passing.

// MagicSet rewrites the program for the query goal(args...), where
// constant arguments are bound and variable arguments are free. It
// returns the rewritten program (including the magic seed fact) and the
// name of the adorned goal predicate whose facts answer the query.
func MagicSet(p *Program, goal string, args []Term) (*Program, string, error) {
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	intens := p.IntensionalPreds()
	if !intens[goal] {
		return nil, "", fmt.Errorf("datalog: magic sets: %s is not an intensional predicate", goal)
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.Negated {
				return nil, "", fmt.Errorf("datalog: magic sets requires positive programs; rule %s negates %s", r, a.Pred)
			}
			if IsBuiltin(a.Pred) {
				return nil, "", fmt.Errorf("datalog: magic sets does not support builtin %s", a.Pred)
			}
		}
	}

	goalAd := make([]bool, len(args))
	for i, t := range args {
		goalAd[i] = !t.IsVar()
	}

	out := &Program{}
	type adorned struct {
		pred string
		ad   string
	}
	done := map[string]bool{}
	var queue []adorned
	enqueue := func(pred string, ad string) {
		key := pred + "/" + ad
		if !done[key] {
			done[key] = true
			queue = append(queue, adorned{pred, ad})
		}
	}
	enqueue(goal, adornString(goalAd))

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, r := range p.Rules {
			if r.Head.Pred != cur.pred {
				continue
			}
			rewriteRule(out, r, cur.ad, intens, enqueue)
		}
	}

	// A sub-goal that occurs in several rule bodies with the same
	// adornment and prefix emits identical magic rules; drop the
	// duplicates so the rewritten program (and hence bottom-up evaluation
	// over it) stays small.
	seen := map[string]bool{}
	dedup := out.Rules[:0]
	for _, r := range out.Rules {
		s := r.String()
		if !seen[s] {
			seen[s] = true
			dedup = append(dedup, r)
		}
	}
	out.Rules = dedup

	// Seed: the magic fact for the goal's bound constants.
	seed := Atom{Pred: magicName(goal, adornString(goalAd))}
	for i, t := range args {
		if goalAd[i] {
			seed.Args = append(seed.Args, t)
		}
	}
	out.Rules = append(out.Rules, Rule{Head: seed})

	answer := adornedName(goal, adornString(goalAd))
	if err := out.Validate(); err != nil {
		return nil, "", fmt.Errorf("datalog: magic sets produced an invalid program: %w", err)
	}
	return out, answer, nil
}

func adornString(bound []bool) string {
	var b strings.Builder
	for _, x := range bound {
		if x {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

func adornedName(pred, ad string) string {
	if ad == "" {
		return pred + "_ad"
	}
	return pred + "_" + ad
}

func magicName(pred, ad string) string {
	return "m_" + adornedName(pred, ad)
}

// rewriteRule emits the adorned rule and its magic rules for one original
// rule under the head adornment ad.
func rewriteRule(out *Program, r Rule, ad string, intens map[string]bool, enqueue func(string, string)) {
	bound := map[string]bool{}
	var magicHeadArgs []Term
	for i, t := range r.Head.Args {
		if ad[i] == 'b' {
			magicHeadArgs = append(magicHeadArgs, t)
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	magicHead := Atom{Pred: magicName(r.Head.Pred, ad), Args: magicHeadArgs}

	newBody := []Atom{magicHead}
	prefix := []Atom{magicHead} // original-body prefix, adorned, for magic rules
	for _, a := range r.Body {
		if intens[a.Pred] {
			// Adorn by current boundness.
			adBits := make([]bool, len(a.Args))
			var boundArgs []Term
			for i, t := range a.Args {
				adBits[i] = !t.IsVar() || bound[t.Var]
				if adBits[i] {
					boundArgs = append(boundArgs, t)
				}
			}
			subAd := adornString(adBits)
			enqueue(a.Pred, subAd)
			// Magic rule: the sub-goal's bound arguments are demanded
			// whenever the prefix is derivable.
			out.Rules = append(out.Rules, Rule{
				Head: Atom{Pred: magicName(a.Pred, subAd), Args: boundArgs},
				Body: append([]Atom(nil), prefix...),
			})
			adAtom := Atom{Pred: adornedName(a.Pred, subAd), Args: a.Args}
			newBody = append(newBody, adAtom)
			prefix = append(prefix, adAtom)
		} else {
			newBody = append(newBody, a)
			prefix = append(prefix, a)
		}
		// Full SIPS: after an atom is evaluated, all its variables are
		// bound for the atoms to its right.
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	out.Rules = append(out.Rules, Rule{
		Head: Atom{Pred: adornedName(r.Head.Pred, ad), Args: r.Head.Args},
		Body: newBody,
	})
}

// QueryWithMagic evaluates a query goal(args...) over the EDB using the
// magic-sets rewriting and returns the answer tuples (constant names).
func QueryWithMagic(p *Program, edb *DB, goal string, args []Term) ([][]string, error) {
	rewritten, answer, err := MagicSet(p, goal, args)
	if err != nil {
		return nil, err
	}
	out, err := Eval(rewritten, edb)
	if err != nil {
		return nil, err
	}
	var results [][]string
	for _, tuple := range out.Tuples(answer) {
		ok := true
		for i, t := range args {
			if !t.IsVar() && tuple[i] != t.Const {
				ok = false
				break
			}
		}
		if ok {
			results = append(results, tuple)
		}
	}
	return results, nil
}

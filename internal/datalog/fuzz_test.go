package datalog

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted
// programs survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(X) :- q(X).",
		"path(X, Z) :- path(X, Y), edge(Y, Z).",
		"flag.",
		"good(X) :- node(X), not bad(X), lt(X, X).",
		"p(a) :- q(a), \\+ r(a).",
		"% comment\np(a).",
		"p(X :-",
		":-",
		"p(,).",
		"((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if got := p2.String(); got != printed {
			t.Fatalf("print/reparse not stable:\n%q\nvs\n%q", printed, got)
		}
	})
}

// FuzzEval checks that evaluation of random small parsed programs over a
// fixed EDB never panics (errors are fine).
func FuzzEval(f *testing.F) {
	f.Add("p(X) :- e(X, Y).")
	f.Add("p(X) :- e(X, Y), not p(Y).")
	f.Add("p(X) :- e(X, X). q :- p(a).")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 300 || strings.Count(src, ".") > 12 {
			return // keep evaluation cheap
		}
		p, err := Parse(src)
		if err != nil {
			return
		}
		db := NewDB()
		db.AddFact("e", "a", "b")
		db.AddFact("e", "b", "a")
		_, _ = Eval(p, db)
		_, _ = EvalQuasiGuarded(p, db, TDFuncDeps(1))
	})
}

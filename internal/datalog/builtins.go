package datalog

import (
	"fmt"
	"strconv"
	"sync"
)

// BuiltinFunc evaluates a builtin predicate on ground arguments (constant
// names). Builtins are checked once all their variables are bound by
// positive relational atoms (enforced by Validate's safety rules).
//
// The paper highlights built-in predicates as one of datalog's advantages
// over the MSO-to-FTA route ("the possibility to define new built-in
// predicates if they admit an efficient implementation"); RegisterBuiltin
// is the corresponding extension point.
type BuiltinFunc func(args []string) (bool, error)

// builtinsMu guards the builtins registry: evaluation is concurrent
// (parallel stratum tasks call IsBuiltin/callBuiltin), and RegisterBuiltin
// may legally race with a running Eval.
var builtinsMu sync.RWMutex

var builtins = map[string]BuiltinFunc{
	"eq":  func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return x == y }) },
	"neq": func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return x != y }) },
	"lt":  func(a []string) (bool, error) { return binary(a, less) },
	"lte": func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return !less(y, x) }) },
}

func binary(args []string, f func(x, y string) bool) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("datalog: builtin expects 2 arguments, got %d", len(args))
	}
	return f(args[0], args[1]), nil
}

// less orders numerically when both arguments are integers, and
// lexicographically otherwise.
func less(x, y string) bool {
	xi, errX := strconv.Atoi(x)
	yi, errY := strconv.Atoi(y)
	if errX == nil && errY == nil {
		return xi < yi
	}
	return x < y
}

// IsBuiltin reports whether the predicate name is a registered builtin.
// Builtin names shadow extensional predicates; programs must not reuse
// them.
func IsBuiltin(name string) bool {
	builtinsMu.RLock()
	_, ok := builtins[name]
	builtinsMu.RUnlock()
	return ok
}

// RegisterBuiltin installs (or replaces) a builtin predicate. It is safe
// to call concurrently with evaluation.
func RegisterBuiltin(name string, f BuiltinFunc) {
	builtinsMu.Lock()
	builtins[name] = f
	builtinsMu.Unlock()
}

func callBuiltin(name string, args []string) (bool, error) {
	builtinsMu.RLock()
	f, ok := builtins[name]
	builtinsMu.RUnlock()
	if !ok {
		return false, fmt.Errorf("datalog: unknown builtin %s", name)
	}
	return f(args)
}

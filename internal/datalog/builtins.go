package datalog

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
)

// BuiltinFunc evaluates a builtin predicate on ground arguments (constant
// names). Builtins are checked once all their variables are bound by
// positive relational atoms (enforced by Validate's safety rules).
//
// The paper highlights built-in predicates as one of datalog's advantages
// over the MSO-to-FTA route ("the possibility to define new built-in
// predicates if they admit an efficient implementation"); RegisterBuiltin
// is the corresponding extension point.
type BuiltinFunc func(args []string) (bool, error)

// The builtins registry is copy-on-write: IsBuiltin and callBuiltin run
// in the innermost evaluation loops (millions of calls per fixpoint), so
// reads go through a single atomic pointer load with no locking, while
// RegisterBuiltin — rare, and legal to race with a running Eval —
// publishes a fresh copy of the map under builtinsMu.
var builtinsMu sync.Mutex

// builtins is a pointer-typed package var (not an init-stored value):
// package-level variables elsewhere parse programs during their own
// initialization, and Go orders variable initializers by dependency —
// which an init function would run after.
var builtins = func() *atomic.Pointer[map[string]BuiltinFunc] {
	p := new(atomic.Pointer[map[string]BuiltinFunc])
	p.Store(&defaultBuiltins)
	return p
}()

var defaultBuiltins = map[string]BuiltinFunc{
	"eq":  func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return x == y }) },
	"neq": func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return x != y }) },
	"lt":  func(a []string) (bool, error) { return binary(a, less) },
	"lte": func(a []string) (bool, error) { return binary(a, func(x, y string) bool { return !less(y, x) }) },
}

func binary(args []string, f func(x, y string) bool) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("datalog: builtin expects 2 arguments, got %d", len(args))
	}
	return f(args[0], args[1]), nil
}

// less orders numerically when both arguments are integers, and
// lexicographically otherwise.
func less(x, y string) bool {
	xi, errX := strconv.Atoi(x)
	yi, errY := strconv.Atoi(y)
	if errX == nil && errY == nil {
		return xi < yi
	}
	return x < y
}

// IsBuiltin reports whether the predicate name is a registered builtin.
// Builtin names shadow extensional predicates; programs must not reuse
// them.
func IsBuiltin(name string) bool {
	_, ok := (*builtins.Load())[name]
	return ok
}

// RegisterBuiltin installs (or replaces) a builtin predicate. It is safe
// to call concurrently with evaluation.
func RegisterBuiltin(name string, f BuiltinFunc) {
	builtinsMu.Lock()
	defer builtinsMu.Unlock()
	old := *builtins.Load()
	next := make(map[string]BuiltinFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = f
	builtins.Store(&next)
}

func callBuiltin(name string, args []string) (bool, error) {
	f, ok := (*builtins.Load())[name]
	if !ok {
		return false, fmt.Errorf("datalog: unknown builtin %s", name)
	}
	return f(args)
}

package monadic

// Tests of the public facade: every re-exported entry point is exercised
// once on the paper's running example or a small instance.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/datalog"
	"repro/internal/graph"
)

const runningExample = `
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`

func TestFacadeSchemaAPI(t *testing.T) {
	s, err := ParseSchema(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	primes, err := Primes(s)
	if err != nil {
		t.Fatal(err)
	}
	if primes.Len() != 4 {
		t.Fatalf("primes = %v", primes.Elems())
	}
	ok, err := IsPrime(s, "a")
	if err != nil || !ok {
		t.Fatalf("IsPrime(a) = %v, %v", ok, err)
	}
	in, err := PrimalityInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := in.EnumerateNaive()
	if err != nil || !naive.Equal(primes) {
		t.Fatalf("naive enumeration disagreement: %v, %v", naive, err)
	}
	report, err := Check3NF(s)
	if err != nil || report.OK {
		t.Fatalf("Check3NF = %+v, %v", report, err)
	}
	if CheckBCNF(s).OK {
		t.Fatal("BCNF should fail")
	}
}

func TestFacadeStructureAndDecomposition(t *testing.T) {
	s := MustParseSchema(runningExample)
	st := s.ToStructure()
	d, err := Decompose(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(st); err != nil {
		t.Fatal(err)
	}
	norm, err := NormalizeTuple(d)
	if err != nil {
		t.Fatal(err)
	}
	td, _, err := BuildTD(st, norm, norm.Width())
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Tuples("bag")) != norm.Len() {
		t.Fatal("τ_td bags wrong")
	}
	nice, err := NormalizeNice(d, NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nice.Width() != d.Width() {
		t.Fatal("nice form changed width")
	}
	st2, err := ParseStructure("e(a,b). e(b,a).", nil)
	if err != nil || st2.Size() != 2 {
		t.Fatalf("ParseStructure: %v", err)
	}
}

func TestFacadeGraphAPI(t *testing.T) {
	g := graph.Cycle(5)
	ok, err := ThreeColorable(g)
	if err != nil || !ok {
		t.Fatalf("ThreeColorable(C5) = %v, %v", ok, err)
	}
	colors, ok, err := ThreeColoring(g)
	if err != nil || !ok {
		t.Fatal("no witness for C5")
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			t.Fatal("improper witness")
		}
	}
	two, err := KColorable(g, 2)
	if err != nil || two {
		t.Fatalf("C5 2-colorable? %v, %v", two, err)
	}
	count, err := CountColorings(g, 3)
	if err != nil || count != 30 {
		t.Fatalf("CountColorings(C5,3) = %d, %v", count, err)
	}
	chi, err := ChromaticNumber(g)
	if err != nil || chi != 3 {
		t.Fatalf("χ(C5) = %d, %v", chi, err)
	}
	tw, err := Treewidth(g)
	if err != nil || tw != 2 {
		t.Fatalf("tw(C5) = %d, %v", tw, err)
	}
	tw2, err := TreewidthPreprocessed(g)
	if err != nil || tw2 != 2 {
		t.Fatalf("preprocessed tw(C5) = %d, %v", tw2, err)
	}
	if _, err := DecomposeGraph(g); err != nil {
		t.Fatal(err)
	}
	vc, err := MinVertexCover(g)
	if err != nil || vc != 3 {
		t.Fatalf("VC(C5) = %d, %v", vc, err)
	}
	mis, err := MaxIndependentSet(g)
	if err != nil || mis != 2 {
		t.Fatalf("MIS(C5) = %d, %v", mis, err)
	}
	ds, err := MinDominatingSet(g)
	if err != nil || ds != 2 {
		t.Fatalf("γ(C5) = %d, %v", ds, err)
	}
}

func TestFacadeKeyFor(t *testing.T) {
	s := MustParseSchema(runningExample)
	key, ok, err := KeyFor(s, "a")
	if err != nil || !ok || len(key) != 3 {
		t.Fatalf("KeyFor(a) = %v, %v, %v", key, ok, err)
	}
	_, ok, err = KeyFor(s, "e")
	if err != nil || ok {
		t.Fatalf("KeyFor(e) = %v, %v", ok, err)
	}
	if _, _, err := KeyFor(s, "zz"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestFacadeDatalogAPI(t *testing.T) {
	prog, err := ParseProgram(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseStructure("edge(a,b). edge(b,c).", nil)
	if err != nil {
		t.Fatal(err)
	}
	db := DBFromStructure(st)
	out, err := EvalDatalog(prog, db)
	if err != nil || !out.Has("path", "a", "c") {
		t.Fatalf("EvalDatalog: %v", err)
	}
	answers, err := QueryWithMagic(prog, db, "path", []datalog.Term{datalog.C("a"), datalog.V("Y")})
	if err != nil || len(answers) != 2 {
		t.Fatalf("QueryWithMagic: %v, %v", answers, err)
	}
	guarded := MustParseProgramForTest(t, `
theta(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
accept :- root(V), theta(V).
`)
	edb := datalog.NewDB()
	edb.AddFact("bag", "s0", "x0", "x1")
	edb.AddFact("leaf", "s0")
	edb.AddFact("root", "s0")
	edb.AddFact("e", "x0", "x1")
	out2, err := EvalQuasiGuarded(guarded, edb, TDFuncDeps(1))
	if err != nil || !out2.Has("accept") {
		t.Fatalf("EvalQuasiGuarded: %v", err)
	}
}

func MustParseProgramForTest(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeMSOAPI(t *testing.T) {
	f, err := ParseMSO("forall x exists y e(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseStructure("e(a,b). e(b,a).", nil)
	if err != nil {
		t.Fatal(err)
	}
	holds, err := EvalMSO(st, f)
	if err != nil || !holds {
		t.Fatalf("EvalMSO: %v, %v", holds, err)
	}
	one, err := EvalMSOQuery(st, MustParseMSOForTest(t, "exists y e(x, y)"), "x", 0)
	if err != nil || !one {
		t.Fatalf("EvalMSOQuery: %v, %v", one, err)
	}
	if PrimalityMSO().QuantifierDepth() < 2 {
		t.Fatal("primality formula depth suspicious")
	}
	if ThreeColorabilityMSO().QuantifierDepth() != 5 {
		t.Fatal("3COL formula depth wrong")
	}
}

func MustParseMSOForTest(t *testing.T, src string) *Formula {
	t.Helper()
	f, err := ParseMSO(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFacadeCompilerAPI(t *testing.T) {
	st, err := ParseStructure("c(v0). dom v1.", nil)
	if err != nil {
		t.Fatal(err)
	}
	phi := MustParseMSOForTest(t, "c(x)")
	res, err := RunMSO(st, phi, "x", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := st.Elem("v0")
	if res.Selected.Len() != 1 || !res.Selected.Has(v0) {
		t.Fatalf("RunMSO selected %v", res.Selected.Elems())
	}
	compiled, err := CompileMSO(st.Sig(), phi, "x", CompileOptions{Width: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Program.IsMonadic() {
		t.Fatal("compiled program not monadic")
	}
}

func TestFacadeRelevance(t *testing.T) {
	s := MustParseSchema("cold -> cough\nflu -> cough\nflu -> fever")
	hyp := &Set{}
	man := &Set{}
	for _, n := range []string{"cold", "flu"} {
		i, _ := s.Attr(n)
		hyp.Add(i)
	}
	for _, n := range []string{"cough", "fever"} {
		i, _ := s.Attr(n)
		man.Add(i)
	}
	rel, err := Relevant(s, hyp, man, "flu")
	if err != nil || !rel {
		t.Fatalf("Relevant(flu) = %v, %v", rel, err)
	}
	rel, err = Relevant(s, hyp, man, "cold")
	if err != nil || rel {
		t.Fatalf("Relevant(cold) = %v, %v", rel, err)
	}
	if _, err := Relevant(s, hyp, man, "nope"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestFacadeTable1(t *testing.T) {
	rows, err := Table1(bench.Table1Opts{FDs: []int{1}, Seed: 1, SkipMona: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatTable1(rows), "#Att") {
		t.Fatal("FormatTable1 wrong")
	}
}

package monadic

// Additional ablation benchmarks for the extension features: the
// magic-sets rewriting of Section 6's planned optimizations, the
// minimizing MSO-to-FTA regime, the relevance (abduction) DP of
// Section 7, and the normal-form checker built on the FPT primality
// enumeration.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datalog"
	"repro/internal/fta"
	"repro/internal/mso"
	"repro/internal/normalform"
	"repro/internal/primality"
	"repro/internal/threecol"
	"repro/internal/workload"
)

// ---- E8: magic sets vs full bottom-up evaluation ----

// magicWorkload: a long chain plus an irrelevant dense component; the
// query asks for reachability from the chain's head, so the magic
// rewriting never touches the dense part.
func magicWorkload(n int) *datalog.DB {
	db := datalog.NewDB()
	for i := 0; i+1 < n; i++ {
		db.AddFact("edge", "c"+strconv.Itoa(i), "c"+strconv.Itoa(i+1))
	}
	// Irrelevant clique of √n vertices (quadratic fact mass for the full
	// evaluation, untouched by the magic evaluation).
	m := 1
	for m*m < n {
		m++
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				db.AddFact("edge", "k"+strconv.Itoa(i), "k"+strconv.Itoa(j))
			}
		}
	}
	return db
}

func BenchmarkMagicSets(b *testing.B) {
	prog := datalog.MustParse(`
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	for _, n := range []int{50, 100, 200} {
		db := magicWorkload(n)
		b.Run(fmt.Sprintf("magic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				answers, err := datalog.QueryWithMagic(prog, db, "path", []datalog.Term{datalog.C("c0"), datalog.V("Y")})
				if err != nil || len(answers) != n-1 {
					b.Fatalf("answers %d, err %v", len(answers), err)
				}
			}
		})
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := datalog.Eval(prog, db)
				if err != nil {
					b.Fatal(err)
				}
				count := 0
				for _, t := range out.Tuples("path") {
					if t[0] == "c0" {
						count++
					}
				}
				if count != n-1 {
					b.Fatalf("count %d", count)
				}
			}
		})
	}
}

// ---- E6b: MSO-to-FTA with intermediate minimization (the MONA regime) ----

func BenchmarkFTAMinimizedCompile(b *testing.B) {
	f := mso.MustParse("forall x exists y forall z (child1(x,y) -> (a(z) | b(x)))")
	labels := []string{"a", "b"}
	b.Run("plain", func(b *testing.B) {
		var stats *fta.CompileStats
		for i := 0; i < b.N; i++ {
			var err error
			_, stats, err = fta.Compile(f, labels)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.MaxStates), "maxstates")
	})
	b.Run("minimized", func(b *testing.B) {
		var stats *fta.CompileStats
		for i := 0; i < b.N; i++ {
			var err error
			_, stats, err = fta.CompileWith(f, labels, fta.CompileOpts{Minimize: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.MaxStates), "maxstates")
	})
}

// ---- E9: abduction relevance (Section 7) on Table 1 workloads ----

func BenchmarkRelevanceEnumeration(b *testing.B) {
	for _, nFD := range []int{3, 7, 15} {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			s, d, err := workload.BalancedSchema(nFD, rng)
			if err != nil {
				b.Fatal(err)
			}
			in, err := primality.NewInstanceWithDecomposition(s, d)
			if err != nil {
				b.Fatal(err)
			}
			n := s.NumAttrs()
			hyp := bitset.New(n)
			man := bitset.New(n)
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					hyp.Add(i)
				}
				if i%3 == 0 {
					man.Add(i)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.EnumerateRelevant(hyp, man); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E10: 3NF checking end to end ----

func BenchmarkCheck3NF(b *testing.B) {
	for _, nFD := range []int{7, 15, 31} {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			s, _, err := workload.BalancedSchema(nFD, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := normalform.Check3NF(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E11: interpreted monadic datalog vs direct DP (Theorem 5.1) ----

// BenchmarkThreeColInterpretedVsDP compares the fully interpreted route
// (expand Fig. 5 into monadic datalog over τ_td, evaluate with the
// quasi-guarded engine) against the direct dynamic program — the paper's
// remark that "some applications require a fast execution which cannot
// always be guaranteed by an interpreter".
func BenchmarkThreeColInterpretedVsDP(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := workload.ColorableGraph(25, 2, rng)
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := threecol.DecideMonadic(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := threecol.Decide(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- counting ablation: decision vs counting over the same transitions ----

func BenchmarkColoringCounting(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := workload.ColorableGraph(40, 2, rng)
	b.Run("decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := KColorable(g, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CountColorings(g, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package monadic is the public API of this reproduction of
// "Monadic Datalog over Finite Structures with Bounded Treewidth"
// (Gottlob, Pichler, Wei; PODS 2007).
//
// It re-exports the building blocks — finite structures, tree
// decompositions and their normal forms, the datalog engine with
// quasi-guarded linear-time evaluation (Theorem 4.4), MSO logic, and the
// generic MSO→monadic-datalog compiler (Theorem 4.5) — together with the
// paper's concrete algorithms: 3-Colorability (Fig. 5) and PRIMALITY
// decision and enumeration (Fig. 6, Sec. 5.3).
//
// Quick start (see also examples/quickstart):
//
//	s := monadic.MustParseSchema("a b -> c\nc -> b")
//	primes, err := monadic.Primes(s)       // linear-time FPT enumeration
//	ok, err := monadic.IsPrime(s, "a")     // single-attribute decision
//
// Repeated queries over one structure should go through a Session,
// which caches the decomposition, normal forms and τ_td structure and
// shares compiled programs, so only the linear-time evaluation runs
// per query:
//
//	sess := monadic.NewSession(st)
//	res, err := sess.Eval(ctx, phi, "x", monadic.CompileOptions{})
//	fmt.Println(res.Trace) // per-stage wall time and cache hits
package monadic

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/domset"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/normalform"
	"repro/internal/primality"
	"repro/internal/schema"
	"repro/internal/session"
	"repro/internal/structure"
	"repro/internal/threecol"
	"repro/internal/tree"
	"repro/internal/vcover"
)

// Re-exported core types.
type (
	// Structure is a finite τ-structure (Section 2.2).
	Structure = structure.Structure
	// Signature is a relational vocabulary.
	Signature = structure.Signature
	// Predicate is a predicate symbol with arity.
	Predicate = structure.Predicate
	// Graph is a simple undirected graph.
	Graph = graph.Graph
	// Schema is a relational schema (R, F) (Section 2.1).
	Schema = schema.Schema
	// Decomposition is a rooted tree decomposition.
	Decomposition = tree.Decomposition
	// NiceOptions configures nice-form normalization (Section 5).
	NiceOptions = tree.NiceOptions
	// Program is a datalog program.
	Program = datalog.Program
	// DB is a datalog fact database.
	DB = datalog.DB
	// FuncDep declares functional dependence for quasi-guard analysis
	// (Definition 4.3).
	FuncDep = datalog.FuncDep
	// Formula is an MSO formula (Section 2.3).
	Formula = mso.Formula
	// CompileOptions configures the Theorem 4.5 compiler.
	CompileOptions = core.Options
	// Compiled is a compiled monadic datalog program over τ_td.
	Compiled = core.Compiled
	// Set is a bit set of element/attribute/vertex indices.
	Set = bitset.Set
	// Session binds a structure and caches its pipeline artifacts across
	// queries (decomposition, normal forms, τ_td, compiled programs).
	Session = session.Session
	// SchemaSession is the analogous cache for PRIMALITY over a schema.
	SchemaSession = session.SchemaSession
	// SessionStats counts the expensive operations a session performed.
	SessionStats = session.Stats
	// ProgramCache memoizes MSO compilations per (formula, width, options).
	ProgramCache = session.ProgramCache
	// StageError tags pipeline errors (incl. context cancellation) with
	// the stage that observed them; recover it with errors.As.
	StageError = session.StageError
	// Trace records per-stage wall time, output size and cache hits.
	Trace = session.Trace
)

// Sessions.

// NewSession creates a session bound to st, sharing the package-wide
// program cache.
func NewSession(st *Structure) *Session { return session.New(st) }

// NewSessionWithCache creates a session with its own program cache.
func NewSessionWithCache(st *Structure, pc *ProgramCache) *Session {
	return session.NewWithCache(st, pc)
}

// NewProgramCache returns an empty compiled-program cache.
func NewProgramCache() *ProgramCache { return session.NewProgramCache() }

// SessionFor returns the registry session for st (one per structure,
// bounded FIFO), so repeated RunMSO calls on the same structure reuse
// artifacts.
func SessionFor(st *Structure) *Session { return session.For(st) }

// NewSchemaSession creates a session bound to a schema for PRIMALITY.
func NewSchemaSession(s *Schema) *SchemaSession { return session.NewSchemaSession(s) }

// SchemaSessionFor returns the registry session for s.
func SchemaSessionFor(s *Schema) *SchemaSession { return session.ForSchema(s) }

// Parsing.

// ParseStructure reads a τ-structure from the fact-list format; sig may
// be nil to infer the signature.
func ParseStructure(src string, sig *Signature) (*Structure, error) {
	return structure.Parse(src, sig)
}

// ParseSchema reads a relational schema ("a b -> c" lines).
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src) }

// MustParseSchema is ParseSchema that panics on error.
func MustParseSchema(src string) *Schema { return schema.MustParse(src) }

// ParseProgram reads a datalog program.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// ParseMSO reads an MSO formula.
func ParseMSO(src string) (*Formula, error) { return mso.Parse(src) }

// Tree decompositions.

// Decompose computes a tree decomposition of a structure's primal graph
// with the min-fill heuristic.
func Decompose(st *Structure) (*Decomposition, error) {
	return decompose.Structure(st, decompose.MinFill)
}

// DecomposeCtx is Decompose with cancellation.
func DecomposeCtx(ctx context.Context, st *Structure) (*Decomposition, error) {
	return decompose.StructureCtx(ctx, st, decompose.MinFill)
}

// DecomposeGraph computes a tree decomposition of a graph.
func DecomposeGraph(g *Graph) (*Decomposition, error) {
	return decompose.Graph(g, decompose.MinFill)
}

// DecomposeGraphCtx is DecomposeGraph with cancellation.
func DecomposeGraphCtx(ctx context.Context, g *Graph) (*Decomposition, error) {
	return decompose.GraphCtx(ctx, g, decompose.MinFill)
}

// Treewidth computes the exact treewidth of a small graph.
func Treewidth(g *Graph) (int, error) { return decompose.Treewidth(g) }

// TreewidthPreprocessed computes the exact treewidth after simplicial
// reductions, handling much larger bounded-treewidth inputs.
func TreewidthPreprocessed(g *Graph) (int, error) { return decompose.TreewidthPreprocessed(g) }

// NormalizeTuple converts to the Definition 2.3 tuple normal form.
func NormalizeTuple(d *Decomposition) (*Decomposition, error) {
	return tree.NormalizeTuple(d)
}

// NormalizeNice converts to the Section 5 nice normal form.
func NormalizeNice(d *Decomposition, opts NiceOptions) (*Decomposition, error) {
	return tree.NormalizeNice(d, opts)
}

// BuildTD constructs the τ_td structure of Section 4 from a structure and
// a tuple-normal-form decomposition of width w.
func BuildTD(st *Structure, d *Decomposition, w int) (*Structure, []int, error) {
	return tree.BuildTD(st, d, w)
}

// Datalog evaluation.

// EvalDatalog evaluates a program by stratified semi-naive iteration.
func EvalDatalog(p *Program, edb *DB) (*DB, error) { return datalog.Eval(p, edb) }

// EvalDatalogCtx is EvalDatalog with cancellation, polled inside each
// stratum.
func EvalDatalogCtx(ctx context.Context, p *Program, edb *DB) (*DB, error) {
	return datalog.EvalCtx(ctx, p, edb)
}

// EvalQuasiGuarded evaluates a quasi-guarded semipositive program in time
// O(|P|·|A|) by grounding and unit resolution (Theorem 4.4).
func EvalQuasiGuarded(p *Program, edb *DB, fds []FuncDep) (*DB, error) {
	return datalog.EvalQuasiGuarded(p, edb, fds)
}

// EvalQuasiGuardedCtx is EvalQuasiGuarded with cancellation.
func EvalQuasiGuardedCtx(ctx context.Context, p *Program, edb *DB, fds []FuncDep) (*DB, error) {
	return datalog.EvalQuasiGuardedCtx(ctx, p, edb, fds)
}

// TDFuncDeps returns the functional dependencies of the τ_td predicates.
func TDFuncDeps(w int) []FuncDep { return datalog.TDFuncDeps(w) }

// DBFromStructure loads a structure as a datalog EDB.
func DBFromStructure(st *Structure) *DB { return datalog.FromStructure(st, "") }

// SetDatalogMaxWorkers caps the engine's parallel stratum rounds and
// returns the previous cap (1 = serial; the default is GOMAXPROCS).
func SetDatalogMaxWorkers(n int) int { return datalog.SetMaxWorkers(n) }

// SetDPMaxWorkers caps the decomposition DP runners' worker pool and
// returns the previous cap (1 = serial; the default is GOMAXPROCS).
// Results are identical at every setting.
func SetDPMaxWorkers(n int) int { return dp.SetMaxWorkers(n) }

// MSO and the generic compiler.

// EvalMSO decides A ⊨ φ for a sentence by the naive evaluator (the
// exponential baseline; budget may be nil).
func EvalMSO(st *Structure, f *Formula) (bool, error) {
	return mso.Sentence(st, f, nil)
}

// EvalMSOQuery decides (A, elem) ⊨ φ(freeVar) for one element by the
// naive evaluator.
func EvalMSOQuery(st *Structure, f *Formula, freeVar string, elem int) (bool, error) {
	return mso.Eval(st, f, mso.Interp{Elem: map[string]int{freeVar: elem}}, nil)
}

// CompileMSO compiles an MSO unary query (or sentence, with
// opts.Decision) to a quasi-guarded monadic datalog program over τ_td
// (Theorem 4.5).
func CompileMSO(sig *Signature, f *Formula, freeVar string, opts CompileOptions) (*Compiled, error) {
	return core.Compile(sig, f, freeVar, opts)
}

// CompileMSOCtx is CompileMSO with cancellation.
func CompileMSOCtx(ctx context.Context, sig *Signature, f *Formula, freeVar string, opts CompileOptions) (*Compiled, error) {
	return core.CompileCtx(ctx, sig, f, freeVar, opts)
}

// RunMSO evaluates an MSO query over a structure end-to-end via the
// compiled datalog program (Corollary 4.6). It goes through the
// structure's registry session, so repeated queries over the same
// structure reuse the decomposition, normal forms and τ_td artifacts.
func RunMSO(st *Structure, f *Formula, freeVar string, opts CompileOptions) (*core.Result, error) {
	return session.For(st).Eval(context.Background(), f, freeVar, opts)
}

// RunMSOCtx is RunMSO with cancellation: ctx is checked in every
// pipeline stage, and cancellation comes back as a *StageError wrapping
// ctx.Err().
func RunMSOCtx(ctx context.Context, st *Structure, f *Formula, freeVar string, opts CompileOptions) (*core.Result, error) {
	return session.For(st).Eval(ctx, f, freeVar, opts)
}

// PrimalityMSO returns the unary MSO primality query of Example 2.6.
func PrimalityMSO() *Formula { return mso.Primality() }

// ThreeColorabilityMSO returns the MSO sentence of Section 5.1.
func ThreeColorabilityMSO() *Formula { return mso.ThreeColorability() }

// Problem solvers.

// IsPrime decides whether the named attribute is prime (Fig. 6 DP). It
// goes through the schema's registry session, so repeated decisions on
// one schema reuse the decomposed instance.
func IsPrime(s *Schema, attr string) (bool, error) {
	return session.ForSchema(s).IsPrime(context.Background(), attr)
}

// IsPrimeCtx is IsPrime with cancellation.
func IsPrimeCtx(ctx context.Context, s *Schema, attr string) (bool, error) {
	return session.ForSchema(s).IsPrime(ctx, attr)
}

// Primes enumerates all prime attributes in linear time (Section 5.3),
// memoized per schema through the registry session.
func Primes(s *Schema) (*Set, error) {
	return session.ForSchema(s).Primes(context.Background())
}

// PrimesCtx is Primes with cancellation.
func PrimesCtx(ctx context.Context, s *Schema) (*Set, error) {
	return session.ForSchema(s).Primes(ctx)
}

// PrimalityInstance exposes the full PRIMALITY API (decision,
// enumeration, naive baseline, grounding, relevance, key witnesses).
func PrimalityInstance(s *Schema) (*primality.Instance, error) {
	return primality.NewInstance(s)
}

// KeyFor returns a key (minimal superkey) containing the named attribute,
// extracted from the Figure 6 DP's accepting derivation; ok is false when
// the attribute is not prime.
func KeyFor(s *Schema, attr string) (key []int, ok bool, err error) {
	a, found := s.Attr(attr)
	if !found {
		return nil, false, fmt.Errorf("monadic: unknown attribute %s", attr)
	}
	in, err := primality.NewInstance(s)
	if err != nil {
		return nil, false, err
	}
	return in.KeyWitness(a)
}

// ThreeColorable decides 3-colorability of a graph (Fig. 5 DP).
func ThreeColorable(g *Graph) (bool, error) { return threecol.Decide(g) }

// ThreeColorableCtx is ThreeColorable with cancellation.
func ThreeColorableCtx(ctx context.Context, g *Graph) (bool, error) {
	in, err := threecol.NewInstanceCtx(ctx, g)
	if err != nil {
		return false, err
	}
	return in.DecideCtx(ctx)
}

// ThreeColoring returns a proper 3-coloring if one exists.
func ThreeColoring(g *Graph) ([]int, bool, error) {
	in, err := threecol.NewInstance(g)
	if err != nil {
		return nil, false, err
	}
	return in.Coloring()
}

// Extensions (Sections 6–7: optimizations, flexibility, abduction).

// QueryWithMagic evaluates a datalog query goal(args...) after the
// magic-sets rewriting (the "top-down guidance in the style of magic
// sets" of Section 6), deriving only facts relevant to the query.
func QueryWithMagic(p *Program, edb *DB, goal string, args []datalog.Term) ([][]string, error) {
	return datalog.QueryWithMagic(p, edb, goal, args)
}

// KColorable decides proper k-colorability over a tree decomposition
// (the Figure 5 program with a widened solve predicate).
func KColorable(g *Graph, k int) (bool, error) { return threecol.KColorable(g, k) }

// CountColorings counts proper k-colorings by the weighted DP.
func CountColorings(g *Graph, k int) (uint64, error) { return threecol.CountColorings(g, k) }

// ChromaticNumber returns the least k admitting a proper coloring.
func ChromaticNumber(g *Graph) (int, error) { return threecol.ChromaticNumber(g) }

// Check3NF tests third normal form using the FPT primality enumeration —
// the application motivating PRIMALITY in the paper's introduction.
func Check3NF(s *Schema) (*normalform.Report, error) { return normalform.Check3NF(s) }

// CheckBCNF tests Boyce–Codd normal form.
func CheckBCNF(s *Schema) *normalform.Report { return normalform.CheckBCNF(s) }

// MinVertexCover computes a minimum vertex cover size by the
// cost-optimizing DP over a tree decomposition — a further FPT problem on
// the framework (Section 7's outlook).
func MinVertexCover(g *Graph) (int, error) { return vcover.MinVertexCover(g) }

// MaxIndependentSet computes the maximum independent set size.
func MaxIndependentSet(g *Graph) (int, error) { return vcover.MaxIndependentSet(g) }

// MinDominatingSet computes a minimum dominating set size by the
// three-valued-state DP over a tree decomposition.
func MinDominatingSet(g *Graph) (int, error) { return domset.MinDominatingSet(g) }

// Relevant decides the abduction relevance problem of Section 7 for
// definite Horn theories encoded as schemas: does hypothesis attr belong
// to a minimal explanation of the manifestations man from hypotheses hyp?
func Relevant(s *Schema, hyp, man *Set, attr string) (bool, error) {
	a, ok := s.Attr(attr)
	if !ok {
		return false, fmt.Errorf("monadic: unknown attribute %s", attr)
	}
	in, err := primality.NewInstance(s)
	if err != nil {
		return false, err
	}
	return in.DecideRelevant(hyp, man, a)
}

// Experiments.

// Table1 regenerates the paper's Table 1.
func Table1(opts bench.Table1Opts) ([]bench.Table1Row, error) { return bench.Table1(opts) }

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []bench.Table1Row) string { return bench.FormatTable1(rows) }

// Quickstart: the paper's running example end to end.
//
// Builds the schema of Example 2.1 (R = abcdeg, F = {ab→c, c→b, cd→e,
// de→g, g→e}), encodes it as a τ-structure (Example 2.2), computes and
// normalizes a tree decomposition (Figures 1–2), and decides primality of
// every attribute with the Figure 6 dynamic program — reproducing the
// paper's result that a, b, c, d are prime and e, g are not.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	monadic "repro"
)

func main() {
	s := monadic.MustParseSchema(`
% Example 2.1
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`)
	fmt.Printf("schema: %d attributes, %d FDs\n", s.NumAttrs(), s.NumFDs())

	// The τ-structure encoding of Example 2.2.
	st := s.ToStructure()
	fmt.Printf("τ-structure: %d elements, %d tuples\n", st.Size(), st.NumTuples())

	// A tree decomposition (Figure 1) and its nice normal form (cf.
	// Figures 2 and 4).
	d, err := monadic.Decompose(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree decomposition: width %d, %d nodes\n", d.Width(), d.Len())
	nice, err := monadic.NormalizeNice(d, monadic.NiceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nice normal form: width %d, %d nodes\n", nice.Width(), nice.Len())
	fmt.Print(nice.Format(st.Name))

	// Keys (the paper: abd and acd) via the exponential oracle, for
	// illustration.
	keys, err := s.Keys()
	if err != nil {
		panic(err)
	}
	fmt.Print("keys:")
	for _, k := range keys {
		fmt.Print(" {")
		for i, a := range k.Elems() {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(s.AttrName(a))
		}
		fmt.Print("}")
	}
	fmt.Println()

	// Primality of every attribute by the linear-time enumeration of
	// Section 5.3 (one bottom-up and one top-down pass).
	primes, err := monadic.Primes(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("prime attributes (Sec. 5.3 enumeration):")
	primes.ForEach(func(a int) bool {
		fmt.Printf(" %s", s.AttrName(a))
		return true
	})
	fmt.Println()

	// Single-attribute decisions (Figure 6), with a constructive witness:
	// a key containing the attribute, extracted from the accepting
	// derivation.
	for _, name := range []string{"a", "e"} {
		key, ok, err := monadic.KeyFor(s, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prime(%s) = %v", name, ok)
		if ok {
			fmt.Print("   (witness key:")
			for _, b := range key {
				fmt.Printf(" %s", s.AttrName(b))
			}
			fmt.Print(")")
		}
		fmt.Println()
	}
}

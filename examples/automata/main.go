// Tree automata: the MSO-to-FTA route the paper argues against.
//
// Compiles MSO sentences on binary labeled trees to bottom-up tree
// automata (the Thatcher–Wright construction behind Courcelle-style
// algorithm derivations) and shows how intermediate automata grow with
// quantifier nesting — the "state explosion" the paper's monadic datalog
// approach avoids.
//
//	go run ./examples/automata
package main

import (
	"fmt"
	"log"

	"repro/internal/fta"
	"repro/internal/mso"
)

func main() {
	labels := []string{"a", "b"}

	// A concrete sentence and a concrete tree.
	f := mso.MustParse("exists x exists y (child1(x, y) & a(y))")
	aut, stats, err := fta.Compile(f, labels)
	if err != nil {
		log.Fatal(err)
	}
	tr := fta.Node(1, fta.Leaf(0), fta.Leaf(1)) // b(a, b)
	fmt.Printf("φ = %s\n", f)
	fmt.Printf("automaton: %d states, %d transitions (max intermediate: %d)\n",
		aut.NumStates, aut.NumTransitions(), stats.MaxStates)
	fmt.Printf("accepts b(a,b): %v\n", aut.Accepts(tr))
	fmt.Printf("accepts b(b,b): %v\n", aut.Accepts(fta.Node(1, fta.Leaf(1), fta.Leaf(1))))

	// The explosion: alternating quantifiers force determinizations.
	family := []string{
		"exists x a(x)",
		"forall x a(x)",
		"forall x exists y (child1(x,y) -> a(y))",
		"forall x exists y forall z (child1(x,y) -> (a(z) | b(x)))",
	}
	fmt.Println("\nformula                                            max states   determinizations")
	for _, src := range family {
		g := mso.MustParse(src)
		_, st, err := fta.Compile(g, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-50s %11d %18d\n", src, st.MaxStates, st.Determinizations)
	}
	fmt.Println("\nCompare: the paper's monadic datalog programs for 3-Colorability and")
	fmt.Println("PRIMALITY need no automaton at all — see examples/quickstart.")
}

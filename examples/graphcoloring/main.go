// Graph coloring: the Section 5.1 3-Colorability algorithm on a
// bounded-treewidth workload.
//
// Generates a random partial 3-tree (treewidth ≤ 3), decides
// 3-colorability with the Figure 5 dynamic program, extracts a witness
// coloring, verifies it, and cross-checks the answer against brute force
// and against the full-grounding evaluation path.
//
//	go run ./examples/graphcoloring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/threecol"
)

func main() {
	// A random partial 2-tree: treewidth ≤ 2, hence 3-colorable (χ ≤ tw+1)
	// — the DP finds a witness. Raise k to 3 to see negative instances
	// (surviving K4s).
	rng := rand.New(rand.NewSource(7))
	g := graph.PartialKTree(40, 2, 0.3, rng)
	fmt.Printf("graph: %d vertices, %d edges (random partial 2-tree)\n", g.N(), g.M())

	in, err := threecol.NewInstance(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree decomposition width: %d\n", in.Width())

	ok, err := in.Decide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-colorable (Fig. 5 DP): %v\n", ok)

	viaGrounding, err := in.GroundDecide()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-colorable (grounding + unit resolution): %v\n", viaGrounding)
	fmt.Printf("3-colorable (brute force): %v\n", threecol.BruteForce(g))

	colors, ok, err := in.Coloring()
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		counts := [3]int{}
		for _, c := range colors {
			counts[c]++
		}
		for _, e := range g.Edges() {
			if colors[e[0]] == colors[e[1]] {
				log.Fatalf("extracted coloring is improper at edge %v", e)
			}
		}
		fmt.Printf("witness coloring verified: %d red, %d green, %d blue\n",
			counts[0], counts[1], counts[2])
	}

	// K4 embedded anywhere kills 3-colorability; demonstrate the negative
	// case too.
	k4 := graph.Complete(4)
	bad, err := threecol.Decide(k4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K4 3-colorable: %v\n", bad)
}

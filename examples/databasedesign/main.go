// Database design: the applications motivating PRIMALITY.
//
// The paper's introduction presents primality testing as "an
// indispensable prerequisite for testing if a schema is in third normal
// form", and its conclusion connects the problem to the relevance problem
// of propositional abduction over definite Horn theories. This example
// exercises both: normal-form checking of the running example and a small
// diagnosis scenario.
//
//	go run ./examples/databasedesign
package main

import (
	"fmt"
	"log"

	monadic "repro"
)

func main() {
	// --- Normal forms of the running example (Example 2.1) ---
	s := monadic.MustParseSchema(`
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`)
	report, err := monadic.Check3NF(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running example in 3NF: %v\n", report.OK)
	for _, v := range report.Violations {
		fmt.Printf("  violation %s: %s\n", v.Name, v.Reason)
	}

	// The classic address schema is 3NF but not BCNF.
	addr := monadic.MustParseSchema("street city -> zip\nzip -> city")
	r3, err := monadic.Check3NF(addr)
	if err != nil {
		log.Fatal(err)
	}
	rb := monadic.CheckBCNF(addr)
	fmt.Printf("address schema: 3NF %v, BCNF %v\n", r3.OK, rb.OK)

	// --- Abduction (Section 7): relevance over a definite Horn theory ---
	// Theory: cold → cough, flu → cough, flu → fever.
	// Hypotheses: {cold, flu}. Observed: cough and fever.
	theory := monadic.MustParseSchema(`
cold -> cough
flu -> cough
flu -> fever
`)
	hyp := attrSet(theory, "cold", "flu")
	man := attrSet(theory, "cough", "fever")
	for _, h := range []string{"cold", "flu"} {
		rel, err := monadic.Relevant(theory, hyp, man, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hypothesis %-4s relevant for {cough, fever}: %v\n", h, rel)
	}
	// With only the cough observed, both hypotheses are minimal
	// explanations on their own.
	manCough := attrSet(theory, "cough")
	for _, h := range []string{"cold", "flu"} {
		rel, err := monadic.Relevant(theory, hyp, manCough, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hypothesis %-4s relevant for {cough}:        %v\n", h, rel)
	}
}

func attrSet(s *monadic.Schema, names ...string) *monadic.Set {
	out := &monadic.Set{}
	for _, n := range names {
		i, ok := s.Attr(n)
		if !ok {
			log.Fatalf("unknown attribute %s", n)
		}
		out.Add(i)
	}
	return out
}

// Datalog engine tour: semi-naive evaluation, stratified negation,
// builtins, and the quasi-guarded linear-time path of Theorem 4.4.
//
//	go run ./examples/datalogengine
package main

import (
	"fmt"
	"log"

	monadic "repro"
	"repro/internal/datalog"
)

func main() {
	// 1. Recursion: same-generation over a small parent relation.
	prog, err := monadic.ParseProgram(`
sg(X, X) :- person(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
`)
	if err != nil {
		log.Fatal(err)
	}
	db := datalog.NewDB()
	for _, p := range [][2]string{{"bart", "homer"}, {"lisa", "homer"}, {"homer", "abe"}, {"herb", "abe"}} {
		db.AddFact("par", p[0], p[1])
	}
	for _, n := range []string{"abe", "homer", "herb", "bart", "lisa"} {
		db.AddFact("person", n)
	}
	out, err := monadic.EvalDatalog(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same generation as bart:")
	for _, t := range out.Tuples("sg") {
		if t[0] == "bart" && t[1] != "bart" {
			fmt.Printf("  %s\n", t[1])
		}
	}

	// 2. Stratified negation: unreachable nodes.
	prog2, err := monadic.ParseProgram(`
reach(X) :- start(X).
reach(Y) :- reach(X), edge(X, Y).
unreach(X) :- node(X), not reach(X).
`)
	if err != nil {
		log.Fatal(err)
	}
	db2 := datalog.NewDB()
	db2.AddFact("start", "a")
	db2.AddFact("edge", "a", "b")
	db2.AddFact("edge", "c", "d")
	for _, n := range []string{"a", "b", "c", "d"} {
		db2.AddFact("node", n)
	}
	out2, err := monadic.EvalDatalog(prog2, db2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unreachable:", out2.Tuples("unreach"))

	// 3. Quasi-guarded evaluation over a τ_td-style chain: types propagate
	// bottom-up in guaranteed linear time (Theorem 4.4).
	prog3, err := monadic.ParseProgram(`
theta(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
theta(V) :- bag(V, X0, X1), child1(V1, V), theta(V1), bag(V1, Y0, Y1), e(X0, X1).
accept :- root(V), theta(V).
`)
	if err != nil {
		log.Fatal(err)
	}
	guards, err := datalog.QuasiGuards(prog3, monadic.TDFuncDeps(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quasi-guard body-atom index per rule:", guards)

	db3 := datalog.NewDB()
	n := 100
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("s%d", i)
		db3.AddFact("bag", s, fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
		if i == 0 {
			db3.AddFact("leaf", s)
		} else {
			db3.AddFact("child1", fmt.Sprintf("s%d", i-1), s)
		}
		db3.AddFact("e", fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
	}
	db3.AddFact("root", fmt.Sprintf("s%d", n-1))

	g, err := datalog.Ground(prog3, db3, monadic.TDFuncDeps(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground program: %d clauses over %d atoms (linear in the %d facts)\n",
		len(g.Horn.Clauses), g.NumAtoms(), db3.NumFacts())
	out3, err := monadic.EvalQuasiGuarded(prog3, db3, monadic.TDFuncDeps(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accept derived:", out3.Has("accept"))
}

// MSO pipeline: the generic Theorem 4.5 compilation, end to end.
//
// Takes the unary MSO query φ(x) = c(x) ∧ ∃y ¬c(y) over a unary
// signature, compiles it to a quasi-guarded monadic datalog program over
// τ_td, prints a few of the generated type rules, evaluates the program
// over a structure via the linear-time grounding of Theorem 4.4, and
// cross-checks the selected elements against the naive MSO evaluator.
//
// Run it with a binary signature to see the type-space explosion that
// makes the generic route impractical (the paper's motivation for the
// hand-written Section 5 programs).
//
//	go run ./examples/msopipeline
package main

import (
	"fmt"
	"log"

	monadic "repro"
	"repro/internal/structure"
)

func main() {
	sig := structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})
	phi, err := monadic.ParseMSO("c(x) & exists y ~c(y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: φ(x) = %s   (quantifier depth %d)\n", phi, phi.QuantifierDepth())

	compiled, err := monadic.CompileMSO(sig, phi, "x", monadic.CompileOptions{Width: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bottom-up types, %d top-down types, %d rules\n",
		compiled.UpTypes, compiled.DownTypes, len(compiled.Program.Rules))
	for i, r := range compiled.Program.Rules {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", r)
	}

	// A structure: six elements, three colored.
	st := structure.New(sig)
	for i, colored := range []bool{true, false, true, true, false, false} {
		id := st.AddElem(fmt.Sprintf("v%d", i))
		if colored {
			st.MustAddTuple("c", id)
		}
	}

	res, err := monadic.RunMSO(st, phi, "x", monadic.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: decomposition width %d, %d tree nodes\n", res.Width, res.TDNodes)
	fmt.Print("selected by the compiled datalog program:")
	res.Selected.ForEach(func(e int) bool {
		fmt.Printf(" %s", st.Name(e))
		return true
	})
	fmt.Println()

	// Cross-check against the naive evaluator.
	direct, err := monadic.ParseMSO("c(x) & exists y ~c(y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("selected by naive MSO evaluation:        ")
	for e := 0; e < st.Size(); e++ {
		holds, err := monadic.EvalMSOQuery(st, direct, "x", e)
		if err != nil {
			log.Fatal(err)
		}
		if holds {
			fmt.Printf(" %s", st.Name(e))
		}
	}
	fmt.Println()

	// The blow-up: the same depth-1 query over a binary signature
	// exhausts a 300-type limit immediately.
	sigE := structure.MustSignature(structure.Predicate{Name: "e", Arity: 2})
	edgePhi, _ := monadic.ParseMSO("exists y e(x, y)")
	if _, err := monadic.CompileMSO(sigE, edgePhi, "x", monadic.CompileOptions{Width: 1, MaxTypes: 300}); err != nil {
		fmt.Printf("binary signature, 300-type limit: %v\n", err)
	}
}

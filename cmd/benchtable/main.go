// Command benchtable regenerates the paper's Table 1 (Section 6):
// PRIMALITY processing time of the monadic-datalog program (MD) against
// the budget-capped naive MSO baseline (the MONA substitute), on balanced
// treewidth-3 workloads.
//
//	benchtable [-fds 1,2,3,...] [-seed n] [-budget steps] [-skipmona] [-reps n]
//	benchtable -tc n
//	benchtable -ra n
//	benchtable -pipeline n
//	benchtable -session n
//	benchtable -serve n [-serveReqs m]
//	benchtable -mutate n [-mutateElems m]
//	benchtable -soak n [-soakDur d]
//	benchtable -game n
//
// Each MD measurement is the median of -reps runs. The -tc mode instead
// times transitive closure over an n-vertex path through the generic
// engine — the quick engine health check behind BenchmarkTCPath1000.
// The -ra mode A/Bs the streaming relational-algebra backend against
// the materialized backend and the Theorem 4.4 grounding on an n-bag
// τ_td chain (interleaved runs, allocation volume and wall time), and
// demonstrates a MaxGroundAtoms-capped run completing on the direct
// streaming path; with -json it writes the BENCH_ra.json acceptance
// artifact. The
// -pipeline mode times the end-to-end FPT pipeline (graph → min-fill →
// nice form → 3-colorability DP) on an n-vertex workload, the health row
// behind BenchmarkPipeline. The -session mode measures the session
// architecture's artifact reuse: ten MSO queries over one n-element
// structure, cold (full pipeline each) versus warm (one session). The
// -serve mode starts an in-process monadicd server and drives n
// concurrent clients with -serveReqs requests each against one warm
// structure, reporting throughput and latency percentiles; any request
// error or unclean shutdown fails the run. The -mutate mode measures
// incremental evaluation under mutation: n single-tuple edits, each
// followed by a re-query, on a warm session via Session.Mutate versus
// the same edits invalidating and recomputing wholesale; every edit's
// answers are cross-checked and any divergence fails the run. The -soak
// mode is the overload-control chaos experiment: n clients of mixed
// traffic for -soakDur against an in-process server sized for ~half
// that concurrency, with fault injection armed (FAULTINJECT, or a
// default seeded plan) and a poison driver forcing circuit-breaker
// cycles; it asserts that every overload rejection carried Retry-After,
// no 5xx other than injected ones appeared, at least one full breaker
// open→half-open→close cycle happened, the admitted-request p50 stayed
// within 2× the unloaded p50, heap stayed bounded, and the goroutine
// count returned to baseline after drain — any violation fails the run.
// The -game mode runs the automaton/game backend head-to-head on
// n-element workloads — agreement on every feasible point, then the
// MaxStates-escape point where the automaton dies on its states budget
// and the game backend completes correctly; any disagreement or a
// missing escape fails the run.
//
// With -json, the active mode also writes a machine-readable
// BENCH_<mode>.json report into -jsondir. -timeout bounds the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/workload"
)

func main() {
	fdsSpec := flag.String("fds", "", "comma-separated #FD column (default: the paper's values)")
	seed := flag.Int64("seed", 1, "workload seed")
	budget := flag.Int64("budget", bench.MonaBudget, "baseline step budget")
	skipMona := flag.Bool("skipmona", false, "skip the baseline column")
	reps := flag.Int("reps", 3, "repetitions per MD measurement (median reported)")
	tc := flag.Int("tc", 0, "instead time transitive closure over an n-vertex path")
	ra := flag.Int("ra", 0, "instead A/B the streaming RA backend on an n-bag τ_td chain")
	pipeline := flag.Int("pipeline", 0, "instead time the end-to-end FPT pipeline on an n-vertex graph")
	sessionN := flag.Int("session", 0, "instead measure session artifact reuse on an n-element structure")
	serveN := flag.Int("serve", 0, "instead load-test an in-process monadicd server with n concurrent clients")
	serveReqs := flag.Int("serveReqs", 5, "requests per client in -serve mode")
	mutateN := flag.Int("mutate", 0, "instead measure incremental evaluation across n single-tuple edits")
	mutateElems := flag.Int("mutateElems", 40, "structure size for -mutate mode")
	soakN := flag.Int("soak", 0, "instead soak-test overload control with n clients (try 2x capacity: 16)")
	gameN := flag.Int("game", 0, "instead run the automaton/game backend head-to-head on n-element workloads")
	soakDur := flag.Duration("soakDur", 8*time.Second, "load-phase duration for -soak mode")
	jsonOut := flag.Bool("json", false, "also write a BENCH_<mode>.json report")
	jsonDir := flag.String("jsondir", ".", "directory for -json reports")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, 0)
	defer cancel()

	if *serveN > 0 {
		res, err := bench.ServeLoad(ctx, *serveN, *serveReqs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serve load (%d clients × %d reqs): %d requests, %d errors, %.0f req/s\n",
			res.Clients, res.PerClient, res.Requests, res.Errors, res.ThroughputRPS)
		fmt.Printf("cold %v; warm p50 %v, p90 %v, p99 %v, max %v; decompositions %d; drained %v\n",
			time.Duration(res.ColdNS), time.Duration(res.P50NS), time.Duration(res.P90NS),
			time.Duration(res.P99NS), time.Duration(res.MaxNS), res.Decompositions, res.Drained)
		writeJSON(*jsonOut, *jsonDir, "serve", res)
		return
	}

	if *soakN > 0 {
		res, err := bench.Soak(ctx, *soakN, *soakDur)
		// The JSON artifact is written even on a failed run: the CI
		// soak-smoke job and any human debugging a failure both want the
		// counts behind the verdict.
		writeJSON(*jsonOut, *jsonDir, "soak", res)
		if err != nil {
			fail(err)
		}
		fmt.Printf("soak (%d clients, %v, capacity %d): %d ops (%d ok, %d injected, %d retries exhausted), %d attempts\n",
			res.Clients, time.Duration(res.DurationNS), res.TargetConcurrency,
			res.Ops, res.OpsOK, res.OpsInjected, res.OpsExhausted, res.Attempts)
		fmt.Printf("overload: %d shed 429, %d breaker 503, %d budget 429, %d injected 5xx; breaker cycles %d; faults injected %d\n",
			res.Shed429, res.Breaker503, res.Budget429, res.Injected5xx, res.BreakerCycles, res.FaultsInjected)
		fmt.Printf("admitted p50 %v (unloaded %v, bound %v); heap max %d MiB; goroutines %d -> %d; drained %v\n",
			time.Duration(res.LoadedP50NS), time.Duration(res.UnloadedP50NS), time.Duration(res.LatencyBoundNS),
			res.HeapMaxBytes>>20, res.GoroutinesBefore, res.GoroutinesAfter, res.Drained)
		if !res.Passed {
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "soak violation: %s\n", v)
			}
			fail(fmt.Errorf("benchtable: soak failed %d invariant(s)", len(res.Violations)))
		}
		fmt.Println("soak: all invariants held")
		return
	}

	if *gameN > 0 {
		res, err := bench.GameCompare(ctx, *gameN)
		// Write the artifact even on a failed run: the CI smoke job and
		// any human debugging want the per-point receipts either way.
		writeJSON(*jsonOut, *jsonDir, "game", res)
		if err != nil {
			fail(err)
		}
		fmt.Printf("game head-to-head (n=%d): %d/%d points agreed\n", res.Elems, res.Agreements, res.Comparisons)
		for _, pt := range res.Points {
			fmt.Printf("  %-12s %-28q automaton %v, game %v\n",
				pt.Structure, pt.Formula, time.Duration(pt.AutomatonNS), time.Duration(pt.GameNS))
		}
		fmt.Printf("escape %q: automaton dies at MaxStates=%d (states budget), game completes in %v using %d positions, answer matches naive: %v\n",
			res.EscapeFormula, res.EscapeMaxStates, time.Duration(res.GameNS), res.GamePositions, res.GameCorrect)
		return
	}

	if *mutateN > 0 {
		res, err := bench.Mutate(ctx, *mutateElems, *mutateN)
		if err != nil {
			fail(err)
		}
		fmt.Printf("mutate (n=%d, %d edits): warm %v/edit, cold %v/edit, speedup %.2fx\n",
			res.Elems, res.Edits, time.Duration(res.WarmPerEditNS), time.Duration(res.ColdPerEditNS), res.Speedup)
		fmt.Printf("warm session: %d delta(s) applied, %d repair fallback(s), %d invalidation(s); answers matched %v\n",
			res.DeltasApplied, res.RepairFallbacks, res.Invalidations, res.Matched)
		writeJSON(*jsonOut, *jsonDir, "mutate", res)
		return
	}

	if *sessionN > 0 {
		res, err := bench.SessionReuse(ctx, *sessionN, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("session reuse (n=%d, %d queries): cold %v, warm %v, speedup %.2fx\n",
			res.Elems, res.Queries, res.Cold, res.Warm, res.Speedup)
		fmt.Printf("warm session: %d decomposition(s), %d compile(s), %d cache hit(s)\n",
			res.Decompositions, res.Compiles, res.CompileCacheHits)
		writeJSON(*jsonOut, *jsonDir, "session", res)
		return
	}

	if *pipeline > 0 {
		durs := make([]time.Duration, 0, *reps)
		var res bench.PipelineResult
		for r := 0; r < *reps; r++ {
			dur, err := bench.Measure(func() error {
				var err error
				res, err = bench.Pipeline(*pipeline, *seed)
				return err
			})
			if err != nil {
				fail(err)
			}
			durs = append(durs, dur)
			fmt.Printf("pipeline(n=%d): width %d, 3-colorable %v in %v\n", *pipeline, res.Width, res.Colorable, dur)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		fmt.Printf("median: %v\n", durs[len(durs)/2])
		writeJSON(*jsonOut, *jsonDir, "pipeline", map[string]any{
			"n": *pipeline, "width": res.Width, "colorable": res.Colorable,
			"median_ns": durs[len(durs)/2], "runs_ns": durs,
		})
		return
	}

	if *ra > 0 {
		res, err := bench.RACompare(ctx, *ra, *reps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("ra(n=%d): ground program %d literals, fixpoint %d facts\n", res.N, res.GroundLits, res.Facts)
		fmt.Printf("direct streaming:    %v, %d B (streamed %d tuples, %d joins pushed down, peak buffered %d)\n",
			time.Duration(res.StreamNS), res.StreamBytes, res.TuplesStreamed, res.JoinsPushedDown, res.PeakBuffered)
		fmt.Printf("direct materialized: %v, %d B  (streaming/materialized time ratio %.2f)\n",
			time.Duration(res.MatNS), res.MatBytes, res.ThroughputRatio)
		fmt.Printf("grounded (Thm 4.4):  %v, %d B  (alloc ratios: grounded/streaming %.1fx, materialized/streaming %.2fx)\n",
			time.Duration(res.GroundedNS), res.GroundedBy, res.GroundedAllocRatio, res.EngineAllocRatio)
		fmt.Printf("budget cap %d ground atoms: grounded dies (%s); direct completes %v (%d facts in %v)\n",
			res.BudgetCap, res.GroundedBudget, res.DirectUnderCap, res.DirectBudgetFact, time.Duration(res.DirectBudgetNS))
		writeJSON(*jsonOut, *jsonDir, "ra", res)
		return
	}

	if *tc > 0 {
		durs := make([]time.Duration, 0, *reps)
		var facts int
		for r := 0; r < *reps; r++ {
			dur, err := bench.Measure(func() error {
				var err error
				facts, err = bench.TCPath(*tc)
				return err
			})
			if err != nil {
				fail(err)
			}
			durs = append(durs, dur)
			fmt.Printf("tc path(%d): %d facts in %v\n", *tc, facts, dur)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		fmt.Printf("median: %v\n", durs[len(durs)/2])
		writeJSON(*jsonOut, *jsonDir, "tc", map[string]any{
			"n": *tc, "facts": facts, "median_ns": durs[len(durs)/2], "runs_ns": durs,
		})
		return
	}

	opts := bench.Table1Opts{Seed: *seed, MonaBudget: *budget, SkipMona: *skipMona}
	if *fdsSpec != "" {
		for _, part := range strings.Split(*fdsSpec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fail(fmt.Errorf("benchtable: bad -fds entry %q", part))
			}
			opts.FDs = append(opts.FDs, n)
		}
	} else {
		opts.FDs = workload.Table1FDs
	}

	// Median of repetitions for the MD column: rerun the whole table and
	// keep per-row medians (rows are deterministic given the seed).
	var runs [][]bench.Table1Row
	for r := 0; r < *reps; r++ {
		if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("benchtable: %w", err))
		}
		rows, err := bench.Table1(opts)
		if err != nil {
			fail(err)
		}
		runs = append(runs, rows)
		opts.SkipMona = true // baseline measured once; it dominates runtime
	}
	final := runs[0]
	for i := range final {
		durs := make([]time.Duration, 0, len(runs))
		for _, rows := range runs {
			durs = append(durs, rows[i].MD)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		final[i].MD = durs[len(durs)/2]
	}
	fmt.Print(bench.FormatTable1(final))
	writeJSON(*jsonOut, *jsonDir, "table1", final)
}

func writeJSON(enabled bool, dir, mode string, payload any) {
	if !enabled {
		return
	}
	path, err := bench.WriteJSON(dir, mode, payload)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fail(err error) {
	cli.Fail("benchtable", err)
}

// Command treewidth computes tree decompositions.
//
//	treewidth -graph g.txt [-heuristic minfill|mindegree] [-exact] [-form raw|nice|tuple]
//	treewidth -schema s.txt ...
//
// Graph files are fact lists over a binary predicate e ("e(a,b)."); schema
// files use the "a b -> c" line format. The decomposition is printed as an
// indented tree with node kinds after normalization.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/structure"
	"repro/internal/tree"
)

func main() {
	graphPath := flag.String("graph", "", "path to a graph fact file (e/2)")
	schemaPath := flag.String("schema", "", "path to a schema file (lhs -> rhs lines)")
	heuristic := flag.String("heuristic", "minfill", "elimination heuristic: minfill or mindegree")
	exact := flag.Bool("exact", false, "use exact search (small inputs only)")
	form := flag.String("form", "raw", "output form: raw, nice, or tuple")
	flag.Parse()

	st, err := loadStructure(*graphPath, *schemaPath)
	if err != nil {
		fail(err)
	}

	var d *tree.Decomposition
	if *exact {
		g := graph.Primal(st)
		d, err = decompose.Exact(g)
	} else {
		h := decompose.MinFill
		if *heuristic == "mindegree" {
			h = decompose.MinDegree
		} else if *heuristic != "minfill" {
			fail(fmt.Errorf("treewidth: unknown heuristic %q", *heuristic))
		}
		d, err = decompose.Structure(st, h)
	}
	if err != nil {
		fail(err)
	}
	if err := d.Validate(st); err != nil {
		fail(fmt.Errorf("treewidth: internal error, invalid decomposition: %w", err))
	}

	switch *form {
	case "raw":
	case "nice":
		d, err = tree.NormalizeNice(d, tree.NiceOptions{})
	case "tuple":
		d, err = tree.NormalizeTuple(d)
	default:
		err = fmt.Errorf("treewidth: unknown form %q", *form)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("width: %d\nnodes: %d\n", d.Width(), d.Len())
	fmt.Print(d.Format(st.Name))
}

func loadStructure(graphPath, schemaPath string) (*structure.Structure, error) {
	switch {
	case graphPath != "" && schemaPath != "":
		return nil, fmt.Errorf("treewidth: pass exactly one of -graph and -schema")
	case graphPath != "":
		src, err := os.ReadFile(graphPath)
		if err != nil {
			return nil, err
		}
		return structure.Parse(string(src), nil)
	case schemaPath != "":
		src, err := os.ReadFile(schemaPath)
		if err != nil {
			return nil, err
		}
		s, err := schema.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return s.ToStructure(), nil
	default:
		return nil, fmt.Errorf("treewidth: pass -graph or -schema")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

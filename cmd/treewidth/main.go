// Command treewidth computes tree decompositions.
//
//	treewidth -graph g.txt [-heuristic minfill|mindegree] [-exact] [-form raw|nice|tuple]
//	treewidth -schema s.txt ...
//
// Graph files are fact lists over a binary predicate e ("e(a,b)."); schema
// files use the "a b -> c" line format. The decomposition is printed as an
// indented tree with node kinds after normalization.
//
// The default min-fill path runs through the session pipeline: -trace
// prints per-stage wall time (including the decomposition rung used),
// -timeout aborts long decompositions with a stage-tagged deadline
// error, and -budget caps ground atoms, automaton states, and DP table
// entries.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/session"
	"repro/internal/structure"
	"repro/internal/tree"
)

func main() {
	graphPath := flag.String("graph", "", "path to a graph fact file (e/2)")
	schemaPath := flag.String("schema", "", "path to a schema file (lhs -> rhs lines)")
	heuristic := flag.String("heuristic", "minfill", "elimination heuristic: minfill or mindegree")
	exact := flag.Bool("exact", false, "use exact search (small inputs only)")
	form := flag.String("form", "raw", "output form: raw, nice, or tuple")
	trace := flag.Bool("trace", false, "print per-stage timings to stderr")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	budget := flag.Int64("budget", 0, "per-dimension resource budget (0 = unlimited)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, *budget)
	defer cancel()

	st, err := loadStructure(*graphPath, *schemaPath)
	if err != nil {
		fail(err)
	}

	var d *tree.Decomposition
	switch {
	case *exact:
		g := graph.Primal(st)
		d, err = decompose.Exact(g)
		if err == nil && *form != "raw" {
			d, err = normalize(ctx, d, *form)
		}
	case *heuristic == "minfill":
		// The session pipeline caches and traces the min-fill artifacts.
		sess := session.New(st)
		stages, werr := sess.Warm(ctx)
		if *trace && stages != nil {
			fmt.Fprint(os.Stderr, stages)
		}
		if werr != nil {
			fail(werr)
		}
		switch *form {
		case "raw":
			d, err = sess.Decomposition(ctx)
		case "nice":
			d, err = sess.NiceForm(ctx)
		case "tuple":
			d, _, err = sess.TupleForm(ctx)
		default:
			err = fmt.Errorf("treewidth: unknown form %q", *form)
		}
	case *heuristic == "mindegree":
		d, err = decompose.StructureCtx(ctx, st, decompose.MinDegree)
		if err == nil && *form != "raw" {
			d, err = normalize(ctx, d, *form)
		}
	default:
		err = fmt.Errorf("treewidth: unknown heuristic %q", *heuristic)
	}
	if err != nil {
		fail(err)
	}
	if err := d.Validate(st); err != nil {
		fail(fmt.Errorf("treewidth: internal error, invalid decomposition: %w", err))
	}

	fmt.Printf("width: %d\nnodes: %d\n", d.Width(), d.Len())
	fmt.Print(d.Format(st.Name))
}

func normalize(ctx context.Context, d *tree.Decomposition, form string) (*tree.Decomposition, error) {
	switch form {
	case "nice":
		return tree.NormalizeNiceCtx(ctx, d, tree.NiceOptions{})
	case "tuple":
		return tree.NormalizeTupleCtx(ctx, d)
	default:
		return nil, fmt.Errorf("treewidth: unknown form %q", form)
	}
}

func loadStructure(graphPath, schemaPath string) (*structure.Structure, error) {
	switch {
	case graphPath != "" && schemaPath != "":
		return nil, fmt.Errorf("treewidth: pass exactly one of -graph and -schema")
	case graphPath != "":
		src, err := os.ReadFile(graphPath)
		if err != nil {
			return nil, err
		}
		return structure.Parse(string(src), nil)
	case schemaPath != "":
		src, err := os.ReadFile(schemaPath)
		if err != nil {
			return nil, err
		}
		s, err := schema.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return s.ToStructure(), nil
	default:
		return nil, fmt.Errorf("treewidth: pass -graph or -schema")
	}
}

func fail(err error) {
	cli.Fail("treewidth", err)
}

// Command mdlog evaluates a datalog program over an extensional database.
//
//	mdlog -program prog.dl -edb facts.dl [-mode seminaive|guarded] [-width w] [-query pred] [-timeout d] [-budget n]
//
// The EDB file contains ground facts in datalog syntax ("edge(a,b)." per
// line). In guarded mode the program must be quasi-guarded over the τ_td
// functional dependencies for the given width (Theorem 4.4) and is
// evaluated by grounding plus unit resolution; seminaive mode accepts any
// stratified program.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/datalog"
)

func main() {
	progPath := flag.String("program", "", "path to the datalog program")
	edbPath := flag.String("edb", "", "path to the fact file")
	mode := flag.String("mode", "seminaive", "evaluation mode: seminaive or guarded")
	width := flag.Int("width", 1, "treewidth for the τ_td functional dependencies (guarded mode)")
	query := flag.String("query", "", "only print facts of this predicate (default: all intensional)")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this duration (0 = none)")
	budget := flag.Int64("budget", 0, "per-dimension resource budget, e.g. ground atoms (0 = unlimited)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, *budget)
	defer cancel()

	if *progPath == "" || *edbPath == "" {
		fmt.Fprintln(os.Stderr, "mdlog: -program and -edb are required")
		flag.Usage()
		os.Exit(2)
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		fail(err)
	}
	edb, err := loadEDB(*edbPath)
	if err != nil {
		fail(err)
	}

	var out *datalog.DB
	switch *mode {
	case "seminaive":
		out, err = datalog.EvalCtx(ctx, prog, edb)
	case "guarded":
		out, err = datalog.EvalQuasiGuardedCtx(ctx, prog, edb, datalog.TDFuncDeps(*width))
	default:
		err = fmt.Errorf("mdlog: unknown mode %q", *mode)
	}
	if err != nil {
		fail(err)
	}

	preds := []string{*query}
	if *query == "" {
		intens := prog.IntensionalPreds()
		preds = preds[:0]
		for p := range intens {
			preds = append(preds, p)
		}
		sort.Strings(preds)
	}
	for _, p := range preds {
		tuples := out.Tuples(p)
		if len(tuples) == 0 {
			if out.Has(p) {
				fmt.Printf("%s.\n", p)
			}
			continue
		}
		fmt.Println(datalog.FormatBindings(p, tuples))
	}
}

func loadProgram(path string) (*datalog.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return datalog.Parse(string(src))
}

func loadEDB(path string) (*datalog.DB, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	facts, err := datalog.Parse(string(src))
	if err != nil {
		return nil, err
	}
	db := datalog.NewDB()
	for _, r := range facts.Rules {
		if len(r.Body) != 0 {
			return nil, fmt.Errorf("mdlog: EDB file contains a rule: %s", r)
		}
		consts := make([]string, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.IsVar() {
				return nil, fmt.Errorf("mdlog: non-ground fact: %s", r)
			}
			consts[i] = t.Const
		}
		db.AddFact(r.Head.Pred, consts...)
	}
	return db, nil
}

func fail(err error) {
	cli.Fail("mdlog", err)
}

// Command primality runs the paper's PRIMALITY algorithms on a schema.
//
//	primality -schema s.txt -attr a          decide one attribute (Fig. 6)
//	primality -schema s.txt -all             enumerate primes (Sec. 5.3)
//	primality -schema s.txt -all -naive      quadratic re-rooting baseline
//	primality -schema s.txt -all -brute      exponential oracle (small inputs)
//	primality -schema s.txt -check3nf        third-normal-form check
//	primality -schema s.txt -checkbcnf       Boyce–Codd-normal-form check
//
// Schema files use "a b -> c" lines. Timing is printed to stderr.
// -timeout aborts the decomposition or DP after the given duration with
// a stage-tagged deadline error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/normalform"
	"repro/internal/primality"
	"repro/internal/schema"
	"repro/internal/session"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the schema file")
	attr := flag.String("attr", "", "decide primality of this attribute")
	all := flag.Bool("all", false, "enumerate all prime attributes")
	naive := flag.Bool("naive", false, "with -all: use the quadratic baseline")
	brute := flag.Bool("brute", false, "with -all: use the exponential oracle")
	check3nf := flag.Bool("check3nf", false, "check third normal form")
	checkBCNF := flag.Bool("checkbcnf", false, "check Boyce–Codd normal form")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	budget := flag.Int64("budget", 0, "per-dimension resource budget (0 = unlimited)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, *budget)
	defer cancel()

	modes := 0
	for _, m := range []bool{*attr != "", *all, *check3nf, *checkBCNF} {
		if m {
			modes++
		}
	}
	if *schemaPath == "" || modes != 1 {
		fmt.Fprintln(os.Stderr, "primality: need -schema and exactly one of -attr, -all, -check3nf, -checkbcnf")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fail(err)
	}
	s, err := schema.Parse(string(src))
	if err != nil {
		fail(err)
	}

	start := time.Now()
	switch {
	case *check3nf:
		r, err := normalform.Check3NF(s)
		if err != nil {
			fail(err)
		}
		printReport("3NF", r)
	case *checkBCNF:
		printReport("BCNF", normalform.CheckBCNF(s))
	case *attr != "":
		in, err := primality.NewInstanceCtx(ctx, s)
		if err != nil {
			fail(err)
		}
		a, found := s.Attr(*attr)
		if !found {
			fail(fmt.Errorf("primality: unknown attribute %s", *attr))
		}
		key, ok, err := in.KeyWitness(a)
		if err != nil {
			fail(err)
		}
		fmt.Printf("prime(%s) = %v\n", *attr, ok)
		if ok {
			fmt.Printf("witness key:")
			for _, b := range key {
				fmt.Printf(" %s", s.AttrName(b))
			}
			fmt.Println()
		}
	case *brute:
		primes, err := s.PrimesBruteForce()
		if err != nil {
			fail(err)
		}
		printPrimes(s, primes.Elems())
	default:
		var elems []int
		if *naive {
			in, err := primality.NewInstanceCtx(ctx, s)
			if err != nil {
				fail(err)
			}
			set, err := in.EnumerateNaive()
			if err != nil {
				fail(err)
			}
			elems = set.Elems()
		} else {
			// The schema session caches the decomposed instance and
			// memoizes the enumeration.
			set, err := session.NewSchemaSession(s).Primes(ctx)
			if err != nil {
				fail(err)
			}
			elems = set.Elems()
		}
		printPrimes(s, elems)
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
}

func printReport(form string, r *normalform.Report) {
	fmt.Printf("%s: %v\n", form, r.OK)
	for _, v := range r.Violations {
		fmt.Printf("  %s: %s\n", v.Name, v.Reason)
	}
}

func printPrimes(s *schema.Schema, elems []int) {
	fmt.Print("prime attributes:")
	for _, a := range elems {
		fmt.Printf(" %s", s.AttrName(a))
	}
	fmt.Println()
}

func fail(err error) {
	cli.Fail("primality", err)
}

// Command msoeval evaluates an MSO formula over a finite structure.
// The default backend is the naive (exponential) model checker — the
// baseline of Section 6; -backend selects a treewidth-based backend
// instead ("automaton" for the Theorem 4.4/4.5 compile-and-evaluate
// pipeline, "game" for the lazy game-theoretic evaluator).
//
//	msoeval -structure st.txt -formula 'exists x e(x,x)' [-query x] [-backend naive|automaton|game] [-budget n] [-timeout d]
//
// With -query, the formula is treated as a unary query over the named
// free variable and the satisfying elements are printed; otherwise it
// must be a sentence. -timeout aborts the evaluation after the given
// duration with a stage-tagged deadline error. For the naive backend,
// -budget caps model-checker steps; for the others it is the uniform
// per-dimension stage budget (states, ground atoms, game positions).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	// Register the game backend for -backend game.
	_ "repro/internal/backend/game"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/structure"
)

func main() {
	stPath := flag.String("structure", "", "path to the structure fact file")
	formulaSrc := flag.String("formula", "", "MSO formula text (or @file)")
	query := flag.String("query", "", "treat as unary query over this free variable")
	backendName := flag.String("backend", "naive", "evaluation backend: naive, automaton or game")
	budget := flag.Int64("budget", 0, "step budget for naive, uniform stage budget otherwise (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}

	if *stPath == "" || *formulaSrc == "" {
		fmt.Fprintln(os.Stderr, "msoeval: -structure and -formula are required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*stPath)
	if err != nil {
		fail(err)
	}
	st, err := structure.Parse(string(src), nil)
	if err != nil {
		fail(err)
	}
	text := *formulaSrc
	if rest, ok := strings.CutPrefix(text, "@"); ok {
		raw, err := os.ReadFile(rest)
		if err != nil {
			fail(err)
		}
		text = string(raw)
	}
	f, err := mso.Parse(text)
	if err != nil {
		fail(err)
	}

	if *backendName != "naive" {
		if _, err := cli.Backend(*backendName); err != nil {
			fail(err)
		}
		ctx, cancel := cli.Context(*timeout, *budget)
		defer cancel()
		opts := core.Options{Backend: *backendName, Decision: *query == ""}
		start := time.Now()
		res, err := core.RunCtx(ctx, st, f, *query, opts)
		if err != nil {
			fail(err)
		}
		if *query == "" {
			fmt.Printf("holds: %v\n", res.Holds)
		} else {
			fmt.Print("selected:")
			res.Selected.ForEach(func(e int) bool {
				fmt.Printf(" %s", st.Name(e))
				return true
			})
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "backend: %s, width %d, %d decomposition nodes\n", *backendName, res.Width, res.TDNodes)
		fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
		return
	}

	ctx, cancel := cli.Context(*timeout, 0)
	defer cancel()
	var b *mso.Budget
	if *budget > 0 {
		b = &mso.Budget{MaxSteps: *budget}
	}
	start := time.Now()
	if *query == "" {
		ok, err := mso.SentenceCtx(ctx, st, f, b)
		reportBudget(err)
		fmt.Printf("holds: %v\n", ok)
	} else {
		sel, err := mso.QueryCtx(ctx, st, f, *query, b)
		reportBudget(err)
		fmt.Print("selected:")
		sel.ForEach(func(e int) bool {
			fmt.Printf(" %s", st.Name(e))
			return true
		})
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
}

func reportBudget(err error) {
	if errors.Is(err, mso.ErrBudget) {
		fmt.Fprintln(os.Stderr, "msoeval: budget exhausted (the MONA-style out-of-memory outcome)")
		os.Exit(cli.ExitBudget)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	cli.Fail("msoeval", err)
}

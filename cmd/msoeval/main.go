// Command msoeval evaluates an MSO formula over a finite structure with
// the naive (exponential) model checker — the baseline of Section 6.
//
//	msoeval -structure st.txt -formula 'exists x e(x,x)' [-query x] [-budget n] [-timeout d]
//
// With -query, the formula is treated as a unary query over the named
// free variable and the satisfying elements are printed; otherwise it
// must be a sentence. -timeout aborts the evaluation after the given
// duration with a stage-tagged deadline error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/mso"
	"repro/internal/structure"
)

func main() {
	stPath := flag.String("structure", "", "path to the structure fact file")
	formulaSrc := flag.String("formula", "", "MSO formula text (or @file)")
	query := flag.String("query", "", "treat as unary query over this free variable")
	budget := flag.Int64("budget", 0, "step budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, 0)
	defer cancel()

	if *stPath == "" || *formulaSrc == "" {
		fmt.Fprintln(os.Stderr, "msoeval: -structure and -formula are required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*stPath)
	if err != nil {
		fail(err)
	}
	st, err := structure.Parse(string(src), nil)
	if err != nil {
		fail(err)
	}
	text := *formulaSrc
	if rest, ok := strings.CutPrefix(text, "@"); ok {
		raw, err := os.ReadFile(rest)
		if err != nil {
			fail(err)
		}
		text = string(raw)
	}
	f, err := mso.Parse(text)
	if err != nil {
		fail(err)
	}

	var b *mso.Budget
	if *budget > 0 {
		b = &mso.Budget{MaxSteps: *budget}
	}
	start := time.Now()
	if *query == "" {
		ok, err := mso.SentenceCtx(ctx, st, f, b)
		reportBudget(err)
		fmt.Printf("holds: %v\n", ok)
	} else {
		sel, err := mso.QueryCtx(ctx, st, f, *query, b)
		reportBudget(err)
		fmt.Print("selected:")
		sel.ForEach(func(e int) bool {
			fmt.Printf(" %s", st.Name(e))
			return true
		})
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
}

func reportBudget(err error) {
	if errors.Is(err, mso.ErrBudget) {
		fmt.Fprintln(os.Stderr, "msoeval: budget exhausted (the MONA-style out-of-memory outcome)")
		os.Exit(cli.ExitBudget)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	cli.Fail("msoeval", err)
}

// Command mso2datalog runs the generic Theorem 4.5 compiler: it turns an
// MSO formula over a relational signature into an equivalent
// quasi-guarded monadic datalog program over τ_td and prints it.
//
//	mso2datalog -sig 'c/1' -formula 'c(x) & exists y ~c(y)' -var x -width 1
//	mso2datalog -sig 'c/1' -formula 'forall x c(x)' -decision -width 1
//
// As the paper stresses, the generic program is exponential in the
// formula and the width; expect this to be feasible only for small
// signatures, quantifier depths, and widths (see the -max* limits).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	// Register the game backend so -backend game resolves (and reports
	// that it has no compiled form) instead of failing as unknown.
	_ "repro/internal/backend/game"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/structure"
)

func main() {
	sigSpec := flag.String("sig", "", "signature, e.g. 'e/2,c/1'")
	formulaSrc := flag.String("formula", "", "MSO formula text")
	freeVar := flag.String("var", "x", "free element variable of the unary query")
	width := flag.Int("width", 1, "treewidth the program is compiled for")
	decision := flag.Bool("decision", false, "compile the 0-ary decision variant (formula must be a sentence)")
	backendName := flag.String("backend", "", "compilation backend (default automaton; game refuses — it has no compiled form)")
	maxTypes := flag.Int("maxtypes", 2000, "abort after this many types")
	maxWitness := flag.Int("maxwitness", 12, "witness-domain size limit")
	timeout := flag.Duration("timeout", 0, "abort the compilation after this duration (0 = none)")
	budget := flag.Int64("budget", 0, "per-dimension resource budget, e.g. automaton states (0 = unlimited)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, *budget)
	defer cancel()

	if *sigSpec == "" || *formulaSrc == "" {
		fmt.Fprintln(os.Stderr, "mso2datalog: -sig and -formula are required")
		flag.Usage()
		os.Exit(2)
	}
	sig, err := parseSig(*sigSpec)
	if err != nil {
		fail(err)
	}
	f, err := mso.Parse(*formulaSrc)
	if err != nil {
		fail(err)
	}
	if _, err := cli.Backend(*backendName); err != nil {
		fail(err)
	}
	compiled, err := core.CompileCtx(ctx, sig, f, *freeVar, core.Options{
		Width:            *width,
		Decision:         *decision,
		MaxTypes:         *maxTypes,
		MaxWitnessDomain: *maxWitness,
		Backend:          *backendName,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "width %d, quantifier depth %d: %d bottom-up types, %d top-down types, %d rules\n",
		compiled.Width, compiled.QuantifierDepth, compiled.UpTypes, compiled.DownTypes, len(compiled.Program.Rules))
	fmt.Print(compiled.Program)
}

func parseSig(spec string) (*structure.Signature, error) {
	var preds []structure.Predicate
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, arityStr, ok := strings.Cut(part, "/")
		if !ok {
			return nil, fmt.Errorf("mso2datalog: bad predicate spec %q (want name/arity)", part)
		}
		arity, err := strconv.Atoi(arityStr)
		if err != nil {
			return nil, fmt.Errorf("mso2datalog: bad arity in %q", part)
		}
		preds = append(preds, structure.Predicate{Name: name, Arity: arity})
	}
	return structure.NewSignature(preds...)
}

func fail(err error) {
	cli.Fail("mso2datalog", err)
}

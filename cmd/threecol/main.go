// Command threecol decides 3-colorability of a graph (Section 5.1,
// Figure 5) and optionally prints a witness coloring.
//
//	threecol -graph g.txt [-witness] [-brute] [-timeout d]
//
// Graph files are fact lists over a binary predicate e ("e(a,b).").
// -timeout aborts the decomposition or DP after the given duration.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/threecol"
)

func main() {
	graphPath := flag.String("graph", "", "path to the graph fact file (e/2)")
	witness := flag.Bool("witness", false, "print a 3-coloring if one exists")
	brute := flag.Bool("brute", false, "use the exponential baseline instead of the DP")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	budget := flag.Int64("budget", 0, "per-dimension resource budget (0 = unlimited)")
	flag.Parse()

	if err := cli.Init(); err != nil {
		fail(err)
	}
	ctx, cancel := cli.Context(*timeout, *budget)
	defer cancel()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "threecol: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*graphPath)
	if err != nil {
		fail(err)
	}
	st, err := structure.Parse(string(src), nil)
	if err != nil {
		fail(err)
	}
	g, err := graph.FromEdgeStructure(st, "e")
	if err != nil {
		fail(err)
	}

	start := time.Now()
	if *brute {
		fmt.Printf("3-colorable: %v\n", threecol.BruteForce(g))
	} else {
		in, err := threecol.NewInstanceCtx(ctx, g)
		if err != nil {
			fail(err)
		}
		if *witness {
			colors, ok, err := in.ColoringCtx(ctx)
			if err != nil {
				fail(err)
			}
			fmt.Printf("3-colorable: %v\n", ok)
			if ok {
				names := []string{"red", "green", "blue"}
				for v, c := range colors {
					fmt.Printf("%s: %s\n", g.Name(v), names[c])
				}
			}
		} else {
			ok, err := in.DecideCtx(ctx)
			if err != nil {
				fail(err)
			}
			fmt.Printf("3-colorable: %v\n", ok)
		}
		fmt.Fprintf(os.Stderr, "treewidth of decomposition: %d\n", in.Width())
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start))
}

func fail(err error) {
	cli.Fail("threecol", err)
}

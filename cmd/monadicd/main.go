// monadicd is the networked decision service: an HTTP server exposing
// MSO evaluation and the semiring solver problems over the session
// layer. See internal/server for the endpoints and the README "Serving"
// section for the wire format.
//
// Usage:
//
//	monadicd [-addr :8377] [-budget n] [-timeout d] [-max-sessions n] [-grace d]
//	         [-engine streaming|materialized] [-eval grounded|direct]
//	         [-backend automaton|game]
//	         [-max-budget n] [-max-timeout d]
//	         [-max-concurrency n] [-queue n] [-latency-target d]
//	         [-breaker-threshold n] [-breaker-cooldown d]
//	         [-mem-watermark-mb n]
//	         [-read-header-timeout d] [-read-timeout d] [-idle-timeout d]
//
// -budget and -timeout set the per-request defaults (each request gets
// a freshly minted budget; X-Budget / X-Timeout headers override, up to
// the -max-budget / -max-timeout ceilings — a header above its ceiling
// is a 400). -engine selects the datalog rule-evaluation backend; -eval
// selects the session evaluation path — "grounded" is the paper-faithful
// Theorem 4.4 grounding, "direct" streams the compiled program through
// the engine without materializing the ground program. -backend sets
// the default MSO evaluation backend for /eval and /batch — "automaton"
// (the Theorem 4.4/4.5 compile-and-evaluate pipeline) or "game" (the
// lazy game-theoretic evaluator); the X-Backend header overrides it per
// request.
//
// Overload control: adaptive admission (AIMD on observed latency versus
// -latency-target, concurrency capped at -max-concurrency, a bounded
// deadline-aware wait queue of -queue) answers 429 + Retry-After when
// shedding; per-structure circuit breakers (-breaker-threshold
// consecutive capacity failures open one for -breaker-cooldown) answer
// 503 + Retry-After while open. -mem-watermark-mb arms the memory
// watchdog, shedding caches in tiers when the heap crosses it. See the
// README operations table and DESIGN.md "Overload & self-healing".
//
// On SIGINT/SIGTERM the server drains in-flight requests for up to
// -grace before aborting them through context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/datalog"
	"repro/internal/overload"
	"repro/internal/server"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	budget := flag.Int64("budget", 0, "default per-request resource budget per metered dimension (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "resident session cap (FIFO eviction beyond it)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain grace period")
	engine := flag.String("engine", "streaming", "datalog rule-evaluation backend: streaming or materialized")
	evalPath := flag.String("eval", "grounded", "session evaluation path: grounded (Theorem 4.4) or direct (stream the program, skip grounding)")
	backendName := flag.String("backend", "", "default MSO evaluation backend: automaton or game (X-Backend overrides per request)")
	maxBudget := flag.Int64("max-budget", 0, "ceiling on the X-Budget header (0 = none; a header above it is a 400)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on the X-Timeout header (0 = none; a header above it is a 400)")
	maxConcurrency := flag.Int("max-concurrency", server.DefaultMaxConcurrency, "upper bound of the adaptive concurrency limit")
	queueCap := flag.Int("queue", server.DefaultQueueCap, "admission wait-queue capacity (requests beyond it are shed with 429)")
	latencyTarget := flag.Duration("latency-target", server.DefaultLatencyTarget, "AIMD latency setpoint for the admission limiter (negative = fixed limit)")
	breakerThreshold := flag.Int("breaker-threshold", server.DefaultBreakerThreshold, "consecutive capacity failures that open a structure's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "how long an open breaker fast-fails (503) before half-open probes")
	memWatermarkMB := flag.Int64("mem-watermark-mb", 0, "heap watermark in MiB arming the memory watchdog (0 = disabled)")
	readHeaderTimeout := flag.Duration("read-header-timeout", server.DefaultReadHeaderTimeout, "HTTP header read timeout (negative = disabled)")
	readTimeout := flag.Duration("read-timeout", server.DefaultReadTimeout, "HTTP full-request read timeout (negative = disabled)")
	idleTimeout := flag.Duration("idle-timeout", server.DefaultIdleTimeout, "HTTP keep-alive idle timeout (negative = disabled)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "monadicd: unexpected arguments")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	if *memWatermarkMB < 0 {
		fmt.Fprintln(os.Stderr, "monadicd: -mem-watermark-mb must be >= 0")
		os.Exit(cli.ExitUsage)
	}
	switch *engine {
	case "streaming":
		datalog.SetEngine(datalog.EngineStreaming)
	case "materialized":
		datalog.SetEngine(datalog.EngineMaterialized)
	default:
		fmt.Fprintf(os.Stderr, "monadicd: unknown -engine %q (want streaming or materialized)\n", *engine)
		os.Exit(cli.ExitUsage)
	}
	switch *evalPath {
	case "grounded":
		session.SetEvalPath(session.EvalGrounded)
	case "direct":
		session.SetEvalPath(session.EvalDirect)
	default:
		fmt.Fprintf(os.Stderr, "monadicd: unknown -eval %q (want grounded or direct)\n", *evalPath)
		os.Exit(cli.ExitUsage)
	}
	if _, err := cli.Backend(*backendName); err != nil {
		fmt.Fprintln(os.Stderr, cli.Message("monadicd", err))
		os.Exit(cli.ExitUsage)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, cli.Message("monadicd", err))
		os.Exit(cli.ExitUsage)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fail("monadicd", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Config{
		Budget:      *budget,
		Timeout:     *timeout,
		MaxBudget:   *maxBudget,
		MaxTimeout:  *maxTimeout,
		Backend:     *backendName,
		MaxSessions: *maxSessions,
		Limiter: overload.LimiterConfig{
			Max:           *maxConcurrency,
			QueueCap:      *queueCap,
			LatencyTarget: *latencyTarget,
		},
		Breaker: overload.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
		MemWatermark:      uint64(*memWatermarkMB) << 20,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	})
	log.Printf("monadicd: listening on http://%s", l.Addr())
	if err := server.Run(ctx, l, srv, *grace); err != nil {
		cli.Fail("monadicd", err)
	}
	log.Printf("monadicd: drained, bye")
}

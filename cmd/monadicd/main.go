// monadicd is the networked decision service: an HTTP server exposing
// MSO evaluation and the semiring solver problems over the session
// layer. See internal/server for the endpoints and the README "Serving"
// section for the wire format.
//
// Usage:
//
//	monadicd [-addr :8377] [-budget n] [-timeout d] [-max-sessions n] [-grace d]
//	         [-engine streaming|materialized] [-eval grounded|direct]
//
// -budget and -timeout set the per-request defaults (each request gets
// a freshly minted budget; X-Budget / X-Timeout headers override).
// -engine selects the datalog rule-evaluation backend; -eval selects
// the session evaluation path — "grounded" is the paper-faithful
// Theorem 4.4 grounding, "direct" streams the compiled program through
// the engine without materializing the ground program. On
// SIGINT/SIGTERM the server drains in-flight requests for up to -grace
// before aborting them through context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/datalog"
	"repro/internal/server"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	budget := flag.Int64("budget", 0, "default per-request resource budget per metered dimension (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "resident session cap (FIFO eviction beyond it)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain grace period")
	engine := flag.String("engine", "streaming", "datalog rule-evaluation backend: streaming or materialized")
	evalPath := flag.String("eval", "grounded", "session evaluation path: grounded (Theorem 4.4) or direct (stream the program, skip grounding)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "monadicd: unexpected arguments")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	switch *engine {
	case "streaming":
		datalog.SetEngine(datalog.EngineStreaming)
	case "materialized":
		datalog.SetEngine(datalog.EngineMaterialized)
	default:
		fmt.Fprintf(os.Stderr, "monadicd: unknown -engine %q (want streaming or materialized)\n", *engine)
		os.Exit(cli.ExitUsage)
	}
	switch *evalPath {
	case "grounded":
		session.SetEvalPath(session.EvalGrounded)
	case "direct":
		session.SetEvalPath(session.EvalDirect)
	default:
		fmt.Fprintf(os.Stderr, "monadicd: unknown -eval %q (want grounded or direct)\n", *evalPath)
		os.Exit(cli.ExitUsage)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, cli.Message("monadicd", err))
		os.Exit(cli.ExitUsage)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fail("monadicd", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Config{
		Budget:      *budget,
		Timeout:     *timeout,
		MaxSessions: *maxSessions,
	})
	log.Printf("monadicd: listening on http://%s", l.Addr())
	if err := server.Run(ctx, l, srv, *grace); err != nil {
		cli.Fail("monadicd", err)
	}
	log.Printf("monadicd: drained, bye")
}

// monadicd is the networked decision service: an HTTP server exposing
// MSO evaluation and the semiring solver problems over the session
// layer. See internal/server for the endpoints and the README "Serving"
// section for the wire format.
//
// Usage:
//
//	monadicd [-addr :8377] [-budget n] [-timeout d] [-max-sessions n] [-grace d]
//
// -budget and -timeout set the per-request defaults (each request gets
// a freshly minted budget; X-Budget / X-Timeout headers override). On
// SIGINT/SIGTERM the server drains in-flight requests for up to -grace
// before aborting them through context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	budget := flag.Int64("budget", 0, "default per-request resource budget per metered dimension (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "resident session cap (FIFO eviction beyond it)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain grace period")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "monadicd: unexpected arguments")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	if err := cli.Init(); err != nil {
		fmt.Fprintln(os.Stderr, cli.Message("monadicd", err))
		os.Exit(cli.ExitUsage)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fail("monadicd", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Config{
		Budget:      *budget,
		Timeout:     *timeout,
		MaxSessions: *maxSessions,
	})
	log.Printf("monadicd: listening on http://%s", l.Addr())
	if err := server.Run(ctx, l, srv, *grace); err != nil {
		cli.Fail("monadicd", err)
	}
	log.Printf("monadicd: drained, bye")
}

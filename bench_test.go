package monadic

// Benchmarks regenerating the paper's evaluation (Table 1) and the
// ablation experiments E1–E7 of DESIGN.md. Absolute numbers depend on the
// host; the claims under reproduction are shapes: the monadic-datalog
// column grows linearly while the MSO baseline explodes and dies, the
// linear enumeration beats per-attribute re-rooting, and the generic
// Theorem 4.5 compiler and the MSO-to-FTA route blow up where the
// hand-written programs stay flat.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dp"
	"repro/internal/fta"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/primality"
	"repro/internal/structure"
	"repro/internal/threecol"
	"repro/internal/vcover"
	"repro/internal/wis"
	"repro/internal/workload"
)

// ---- E1: Table 1 — PRIMALITY, monadic datalog vs MSO baseline ----

// BenchmarkTable1MD times the Figure 6 decision program on the Table 1
// workload series (tw 3, #Att = 3·#FD). The paper reports essentially
// linear growth; compare ns/op across sub-benchmarks.
func BenchmarkTable1MD(b *testing.B) {
	for _, nFD := range workload.Table1FDs {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			s, d, err := workload.BalancedSchema(nFD, rng)
			if err != nil {
				b.Fatal(err)
			}
			in, err := primality.NewInstanceWithDecomposition(s, d)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Decide(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Mona times the naive MSO baseline on the rows it
// survives (the paper's MONA died from #Att = 12 on; ours exhausts its
// budget similarly — larger rows are skipped).
func BenchmarkTable1Mona(b *testing.B) {
	for _, nFD := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			s, _, err := workload.BalancedSchema(nFD, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, oom, err := bench.MonaPrimality(s, 0, bench.MonaBudget); err != nil || oom {
					b.Fatalf("baseline failed: oom=%v err=%v", oom, err)
				}
			}
		})
	}
}

// ---- E2: linear data complexity of quasi-guarded evaluation ----

// chainEDB builds a τ_td-style chain database of n nodes with width-1
// bags (as in the datalog package tests).
func chainEDB(n int) *datalog.DB {
	db := datalog.NewDB()
	for i := 0; i < n; i++ {
		s := "s" + strconv.Itoa(i)
		db.AddFact("bag", s, "x"+strconv.Itoa(i), "x"+strconv.Itoa(i+1))
		if i == 0 {
			db.AddFact("leaf", s)
		} else {
			db.AddFact("child1", "s"+strconv.Itoa(i-1), s)
			db.AddFact("single", s)
		}
		db.AddFact("e", "x"+strconv.Itoa(i), "x"+strconv.Itoa(i+1))
	}
	db.AddFact("root", "s"+strconv.Itoa(n-1))
	return db
}

var chainProgram = datalog.MustParse(`
theta(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
theta(V) :- bag(V, X0, X1), child1(V1, V), theta(V1), bag(V1, Y0, Y1), e(X0, X1).
accept :- root(V), theta(V).
`)

// BenchmarkQuasiGuardedScaling measures Theorem 4.4's O(|P|·|A|) bound:
// ns/op should grow linearly with the database size.
func BenchmarkQuasiGuardedScaling(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			db := chainEDB(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := datalog.EvalQuasiGuarded(chainProgram, db, datalog.TDFuncDeps(1))
				if err != nil || !out.Has("accept") {
					b.Fatalf("eval failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkSemiNaive runs the same program through the generic semi-naive
// engine for comparison.
func BenchmarkSemiNaive(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			db := chainEDB(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := datalog.Eval(chainProgram, db)
				if err != nil || !out.Has("accept") {
					b.Fatalf("eval failed: %v", err)
				}
			}
		})
	}
}

// ---- E3: generic Theorem 4.5 compiler blow-up ----

var sigColor = structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})

// BenchmarkGenericCompiler compiles a depth-1 query over a unary
// signature at growing widths; the types and rules metrics grow
// exponentially in w — the paper's argument for hand-written programs.
func BenchmarkGenericCompiler(b *testing.B) {
	phi := mso.MustParse("c(x) & exists y ~c(y)")
	for _, w := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			var compiled *core.Compiled
			var err error
			for i := 0; i < b.N; i++ {
				compiled, err = core.Compile(sigColor, phi, "x", core.Options{Width: w, MaxTypes: 100000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(compiled.UpTypes+compiled.DownTypes), "types")
			b.ReportMetric(float64(len(compiled.Program.Rules)), "rules")
		})
	}
}

// ---- E4: PRIMALITY enumeration — linear vs quadratic ----

func enumInstance(b *testing.B, nFD int) *primality.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	s, d, err := workload.BalancedSchema(nFD, rng)
	if err != nil {
		b.Fatal(err)
	}
	in, err := primality.NewInstanceWithDecomposition(s, d)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkEnumerationLinear is the Section 5.3 algorithm: one bottom-up
// and one top-down pass.
func BenchmarkEnumerationLinear(b *testing.B) {
	for _, nFD := range []int{3, 7, 15, 31} {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			in := enumInstance(b, nFD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Enumerate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnumerationNaive re-roots and re-runs the decision program per
// attribute (quadratic data complexity).
func BenchmarkEnumerationNaive(b *testing.B) {
	for _, nFD := range []int{3, 7, 15, 31} {
		b.Run(fmt.Sprintf("att=%d", 3*nFD), func(b *testing.B) {
			in := enumInstance(b, nFD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.EnumerateNaive(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: 3-Colorability scaling ----

func BenchmarkThreeColDP(b *testing.B) {
	for _, n := range []int{20, 40, 80, 200} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				rng := rand.New(rand.NewSource(42))
				g := workload.ColorableGraph(n, 3, rng)
				in, err := threecol.NewInstance(g)
				if err != nil {
					b.Fatal(err)
				}
				prev := dp.SetMaxWorkers(workers)
				defer dp.SetMaxWorkers(prev)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := in.Decide(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkThreeColBrute: backtracking search. Note that on random
// colorable instances backtracking rarely backtracks, so this baseline
// only blows up on adversarial (near-critical) inputs; the paper's actual
// comparison is against the MSO route below.
func BenchmarkThreeColBrute(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			g := workload.ColorableGraph(n, 3, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				threecol.BruteForce(g)
			}
		})
	}
}

// BenchmarkThreeColMSO: the Section 5.1 sentence under the naive MSO
// evaluator — exponential in the vertex count regardless of instance
// difficulty (three set quantifiers), the baseline the paper compares
// against.
func BenchmarkThreeColMSO(b *testing.B) {
	sentence := mso.ThreeColorability()
	for _, n := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			g := workload.ColorableGraph(n, 2, rng)
			st := g.ToStructure()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mso.Sentence(st, sentence, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E6: MSO-to-FTA state explosion ----

// BenchmarkFTAStateExplosion compiles a family of formulas of growing
// quantifier nesting to tree automata, reporting the largest intermediate
// automaton (the explosion of [26] that the paper's approach avoids).
func BenchmarkFTAStateExplosion(b *testing.B) {
	formulas := []string{
		"forall x a(x)",
		"forall x exists y (child1(x,y) -> a(y))",
		"forall x exists y forall z (child1(x,y) -> (a(z) | b(x)))",
	}
	labels := []string{"a", "b"}
	for depth, src := range formulas {
		b.Run(fmt.Sprintf("qdepth=%d", depth+1), func(b *testing.B) {
			f := mso.MustParse(src)
			var stats *fta.CompileStats
			var err error
			for i := 0; i < b.N; i++ {
				_, stats, err = fta.Compile(f, labels)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.MaxStates), "maxstates")
			b.ReportMetric(float64(stats.Determinizations), "determinizations")
		})
	}
}

// ---- E7: grounding+LTUR vs direct (lazy) DP ----

func BenchmarkGroundingVsDP(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	s, d, err := workload.BalancedSchema(7, rng)
	if err != nil {
		b.Fatal(err)
	}
	in, err := primality.NewInstanceWithDecomposition(s, d)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := in.Decide(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ground", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := in.GroundDecide(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- engine micro-benchmarks (datalog hot path) ----

// BenchmarkTCPath1000 is the engine regression benchmark of the
// incremental-index work: transitive closure over a 1000-vertex path
// derives ~500k facts across ~1000 semi-naive rounds, so it measures
// exactly the insert/match path (index maintenance, tuple hashing,
// parallel stratum rounds) rather than any paper-specific program.
func BenchmarkTCPath1000(b *testing.B) {
	db := bench.TCPathEDB(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := datalog.Eval(bench.TCProgram, db)
		if err != nil {
			b.Fatal(err)
		}
		if got, want := out.Count("path"), 1000*999/2; got != want {
			b.Fatalf("got %d path facts, want %d", got, want)
		}
	}
}

// BenchmarkTDGrounding is the streaming-engine acceptance workload: a
// τ_td chain evaluated three ways — the Theorem 4.4 grounding, and the
// direct fixpoint under each rule-evaluation backend. Compare B/op
// across sub-benchmarks: the grounding materializes the ground Horn
// program, the streaming backend holds O(1) rows in flight per rule.
func BenchmarkTDGrounding(b *testing.B) {
	prog, edb := bench.TDChainProgram(bench.RATypes), bench.TDChain(2000)
	check := func(out *datalog.DB, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if !out.Has("accept") {
			b.Fatal("accept not derived")
		}
	}
	b.Run("grounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check(datalog.EvalQuasiGuarded(prog, edb.Clone(), datalog.TDFuncDeps(1)))
		}
	})
	for _, eng := range []datalog.Engine{datalog.EngineStreaming, datalog.EngineMaterialized} {
		eng := eng
		b.Run("direct-"+eng.String(), func(b *testing.B) {
			defer datalog.SetEngine(datalog.SetEngine(eng))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				check(datalog.Eval(prog, edb))
			}
		})
	}
}

// BenchmarkPrimalityEval times the primality-shaped theta program (the
// Theorem 4.5 chain workload of E2) through both engine routes, so the
// generic semi-naive path and the quasi-guarded grounding path are
// tracked side by side.
func BenchmarkPrimalityEval(b *testing.B) {
	db := chainEDB(1000)
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := datalog.Eval(chainProgram, db)
			if err != nil || !out.Has("accept") {
				b.Fatalf("eval failed: %v", err)
			}
		}
	})
	b.Run("quasiguarded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := datalog.EvalQuasiGuarded(chainProgram, db, datalog.TDFuncDeps(1))
			if err != nil || !out.Has("accept") {
				b.Fatalf("eval failed: %v", err)
			}
		}
	})
}

// ---- supporting micro-benchmarks ----

func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	s, _, err := workload.BalancedSchema(31, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := s.AllAttrs()
	x.Remove(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Closure(x)
	}
}

func BenchmarkDecomposeMinFill(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			g := graph.PartialKTree(n, 3, 0.3, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecomposeGraph(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline is the end-to-end FPT health benchmark: random
// 3-colorable graph → min-fill decomposition → nice normal form →
// Figure 5 decision DP. It spans every layer the perf work touches
// (incremental eliminator, normalization, plan cache, worker pool).
func BenchmarkPipeline(b *testing.B) {
	for _, n := range []int{200, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Pipeline(n, 42); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchemaBruteForcePrimality(b *testing.B) {
	// The exponential oracle on a mid-sized schema, for contrast with
	// BenchmarkTable1MD.
	rng := rand.New(rand.NewSource(42))
	s, _, err := workload.BalancedSchema(6, rng) // 18 attributes
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.IsPrimeBruteForce(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver is the semiring-engine smoke benchmark: one fixed
// bounded-treewidth graph evaluated in each of the three modes of the
// generic solver (decision, counting, optimization) through the
// problem packages built on it.
func BenchmarkSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := graph.PartialKTree(60, 3, 0.3, rng)
	b.Run("decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := threecol.Decide(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := threecol.CountColoringsBig(g, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vcover.MinVertexCover(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimize-wis", func(b *testing.B) {
		w := make([]int, g.N())
		for v := range w {
			w[v] = 1 + v%7
		}
		for i := 0; i < b.N; i++ {
			if _, err := wis.MaxWeight(g, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package monadic

// End-to-end tests of the command-line tools against the files in
// testdata/. Each tool is compiled once per test run via `go run`.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		extra := ""
		if ee, ok := err.(*exec.ExitError); ok {
			extra = string(ee.Stderr)
		}
		t.Fatalf("go run %v: %v\n%s", args, err, extra)
	}
	return string(out)
}

func TestCLIPrimality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-attr", "e")
	if !strings.Contains(out, "prime(e) = false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-check3nf")
	if !strings.Contains(out, "3NF: false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all", "-brute")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIThreecolAndTreewidth(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/threecol", "-graph", "testdata/cycle5.graph", "-witness")
	if !strings.Contains(out, "3-colorable: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-exact")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-schema", "testdata/example.schema", "-form", "nice")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIMdlogAndMSO(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/mdlog", "-program", "testdata/tc.dl", "-edb", "testdata/tc_facts.dl")
	if !strings.Contains(out, "path(a,d).") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/msoeval", "-structure", "testdata/cycle5.graph",
		"-formula", "forall x exists y e(x, y)")
	if !strings.Contains(out, "holds: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/mso2datalog", "-sig", "c/1", "-formula", "forall x c(x)",
		"-decision", "-width", "0")
	if !strings.Contains(out, "phi :- root(V)") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIBenchtable(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/benchtable", "-fds", "1", "-reps", "1", "-skipmona")
	if !strings.Contains(out, "#Att") || !strings.Contains(out, "3    3      1") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIBenchtableSessionJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	out := runTool(t, "./cmd/benchtable", "-session", "30", "-json", "-jsondir", dir)
	if !strings.Contains(out, "session reuse") || !strings.Contains(out, "1 decomposition(s)") {
		t.Fatalf("output: %q", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_session.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Name    string `json:"name"`
		Results struct {
			Queries        int     `json:"queries"`
			Speedup        float64 `json:"speedup"`
			Decompositions int     `json:"decompositions"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_session.json is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Name != "session" || rep.Results.Queries != 10 || rep.Results.Decompositions != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Results.Speedup <= 0 {
		t.Fatalf("speedup missing: %+v", rep)
	}
}

func TestCLITreewidthTraceAndTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// -trace prints per-stage timings to stderr; stdout stays the same.
	cmd := exec.Command("go", "run", "./cmd/treewidth",
		"-graph", "testdata/cycle5.graph", "-trace")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("treewidth -trace: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(string(out), "width: 2") {
		t.Fatalf("stdout: %q", out)
	}
	if !strings.Contains(stderr.String(), "decompose") {
		t.Fatalf("trace missing from stderr: %q", stderr.String())
	}
	// A generous -timeout must not change behavior.
	out2 := runTool(t, "./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-timeout", "1m")
	if !strings.Contains(out2, "width: 2") {
		t.Fatalf("output with -timeout: %q", out2)
	}
}

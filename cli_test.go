package monadic

// End-to-end tests of the command-line tools against the files in
// testdata/. Each tool is compiled once per test run via `go run`.

import (
	"os/exec"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		extra := ""
		if ee, ok := err.(*exec.ExitError); ok {
			extra = string(ee.Stderr)
		}
		t.Fatalf("go run %v: %v\n%s", args, err, extra)
	}
	return string(out)
}

func TestCLIPrimality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-attr", "e")
	if !strings.Contains(out, "prime(e) = false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-check3nf")
	if !strings.Contains(out, "3NF: false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all", "-brute")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIThreecolAndTreewidth(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/threecol", "-graph", "testdata/cycle5.graph", "-witness")
	if !strings.Contains(out, "3-colorable: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-exact")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-schema", "testdata/example.schema", "-form", "nice")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIMdlogAndMSO(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/mdlog", "-program", "testdata/tc.dl", "-edb", "testdata/tc_facts.dl")
	if !strings.Contains(out, "path(a,d).") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/msoeval", "-structure", "testdata/cycle5.graph",
		"-formula", "forall x exists y e(x, y)")
	if !strings.Contains(out, "holds: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/mso2datalog", "-sig", "c/1", "-formula", "forall x c(x)",
		"-decision", "-width", "0")
	if !strings.Contains(out, "phi :- root(V)") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIBenchtable(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/benchtable", "-fds", "1", "-reps", "1", "-skipmona")
	if !strings.Contains(out, "#Att") || !strings.Contains(out, "3    3      1") {
		t.Fatalf("output: %q", out)
	}
}

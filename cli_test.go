package monadic

// End-to-end tests of the command-line tools against the files in
// testdata/. Each tool is compiled once per test run via `go run`.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		extra := ""
		if ee, ok := err.(*exec.ExitError); ok {
			extra = string(ee.Stderr)
		}
		t.Fatalf("go run %v: %v\n%s", args, err, extra)
	}
	return string(out)
}

func TestCLIPrimality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-attr", "e")
	if !strings.Contains(out, "prime(e) = false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-check3nf")
	if !strings.Contains(out, "3NF: false") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/primality", "-schema", "testdata/example.schema", "-all", "-brute")
	if !strings.Contains(out, "prime attributes: a b c d") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIThreecolAndTreewidth(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/threecol", "-graph", "testdata/cycle5.graph", "-witness")
	if !strings.Contains(out, "3-colorable: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-exact")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/treewidth", "-schema", "testdata/example.schema", "-form", "nice")
	if !strings.Contains(out, "width: 2") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIMdlogAndMSO(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/mdlog", "-program", "testdata/tc.dl", "-edb", "testdata/tc_facts.dl")
	if !strings.Contains(out, "path(a,d).") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/mdlog", "-program", "testdata/guarded.dl",
		"-edb", "testdata/guarded_facts.dl", "-mode", "guarded", "-width", "1", "-query", "accept")
	if !strings.Contains(out, "accept") {
		t.Fatalf("guarded output: %q", out)
	}
	out = runTool(t, "./cmd/msoeval", "-structure", "testdata/cycle5.graph",
		"-formula", "forall x exists y e(x, y)")
	if !strings.Contains(out, "holds: true") {
		t.Fatalf("output: %q", out)
	}
	out = runTool(t, "./cmd/mso2datalog", "-sig", "c/1", "-formula", "forall x c(x)",
		"-decision", "-width", "0")
	if !strings.Contains(out, "phi :- root(V)") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIBenchtable(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "./cmd/benchtable", "-fds", "1", "-reps", "1", "-skipmona")
	if !strings.Contains(out, "#Att") || !strings.Contains(out, "3    3      1") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIBenchtableSessionJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	out := runTool(t, "./cmd/benchtable", "-session", "30", "-json", "-jsondir", dir)
	if !strings.Contains(out, "session reuse") || !strings.Contains(out, "1 decomposition(s)") {
		t.Fatalf("output: %q", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_session.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Name    string `json:"name"`
		Results struct {
			Queries        int     `json:"queries"`
			Speedup        float64 `json:"speedup"`
			Decompositions int     `json:"decompositions"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_session.json is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Name != "session" || rep.Results.Queries != 10 || rep.Results.Decompositions != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Results.Speedup <= 0 {
		t.Fatalf("speedup missing: %+v", rep)
	}
}

// runToolErr runs a tool expecting failure and returns its exit code,
// stdout and stderr. go run itself always exits 1 on a child failure
// and reports the child's real code in an "exit status N" stderr line,
// so the code is recovered from that line (and the line stripped).
func runToolErr(t *testing.T, env []string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if _, ok := err.(*exec.ExitError); ok {
		code = 1
	} else if err != nil {
		t.Fatalf("go run %v: %v", args, err)
	}
	var kept []string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "exit status "); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil {
				code = n
			}
			continue
		}
		kept = append(kept, line)
	}
	return code, stdout.String(), strings.TrimRight(strings.Join(kept, "\n"), "\n")
}

// assertOneCleanLine checks a tool's error output is a single line with
// no trace of a panic stack.
func assertOneCleanLine(t *testing.T, stderr string) {
	t.Helper()
	if strings.Count(stderr, "\n") != 0 || stderr == "" {
		t.Fatalf("stderr is not one line: %q", stderr)
	}
	for _, needle := range []string{"goroutine", "runtime.", ".go:"} {
		if strings.Contains(stderr, needle) {
			t.Fatalf("stderr leaks a stack trace (%q): %q", needle, stderr)
		}
	}
}

// TestCLIMalformedInput pins the error contract for bad input: exit
// code 1 and a single stage-free message naming the source position.
func TestCLIMalformedInput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bad := filepath.Join(t.TempDir(), "bad.graph")
	if err := os.WriteFile(bad, []byte("e(a,b). e(a,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runToolErr(t, nil, "./cmd/treewidth", "-graph", bad)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
	if !strings.HasPrefix(stderr, "treewidth: ") || !strings.Contains(stderr, "line 1") {
		t.Fatalf("stderr: %q", stderr)
	}

	code, _, stderr = runToolErr(t, nil, "./cmd/mdlog",
		"-program", bad, "-edb", bad)
	if code != 1 {
		t.Fatalf("mdlog exit code %d, want 1\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
	if !strings.HasPrefix(stderr, "mdlog: ") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestCLIBudgetExceeded pins exit code 3 and the stage-tagged one-line
// message when -budget is too small for the run.
func TestCLIBudgetExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	code, _, stderr := runToolErr(t, nil, "./cmd/mdlog",
		"-program", "testdata/guarded.dl", "-edb", "testdata/guarded_facts.dl",
		"-mode", "guarded", "-width", "1", "-budget", "2")
	if code != 3 {
		t.Fatalf("exit code %d, want 3\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
	if !strings.Contains(stderr, "budget") || !strings.Contains(stderr, "[eval]") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestCLITimeoutExceeded pins exit code 4 for a deadline that cannot be
// met.
func TestCLITimeoutExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	code, _, stderr := runToolErr(t, nil, "./cmd/treewidth",
		"-graph", "testdata/cycle5.graph", "-timeout", "1ns")
	if code != 4 {
		t.Fatalf("exit code %d, want 4\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
	if !strings.Contains(stderr, "deadline") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestCLIFaultInjection pins the FAULTINJECT env plumbing end to end:
// an injected fault at a stage boundary surfaces as a one-line
// stage-tagged error with exit code 1, and a fault in the min-fill
// heuristic degrades to the min-degree rung, visible in -trace output.
func TestCLIFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	code, _, stderr := runToolErr(t, []string{"FAULTINJECT=session.build-td@1"},
		"./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-form", "tuple")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
	if !strings.Contains(stderr, "[build-td]") || !strings.Contains(stderr, "injected fault") {
		t.Fatalf("stderr: %q", stderr)
	}

	// Degradation ladder: kill min-fill, watch the trace report the
	// min-degree rung.
	cmd := exec.Command("go", "run", "./cmd/treewidth",
		"-graph", "testdata/cycle5.graph", "-trace")
	cmd.Env = append(os.Environ(), "FAULTINJECT=decompose.min-fill@1")
	var traceErr strings.Builder
	cmd.Stderr = &traceErr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("treewidth under min-fill fault: %v\n%s", err, traceErr.String())
	}
	if !strings.Contains(string(out), "width:") {
		t.Fatalf("stdout: %q", out)
	}
	if !strings.Contains(traceErr.String(), "[min-degree]") {
		t.Fatalf("trace does not show the fallback rung: %q", traceErr.String())
	}

	// A malformed FAULTINJECT spec is rejected up front.
	code, _, stderr = runToolErr(t, []string{"FAULTINJECT=seed=notanumber"},
		"./cmd/treewidth", "-graph", "testdata/cycle5.graph")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr)
	}
	assertOneCleanLine(t, stderr)
}

func TestCLITreewidthTraceAndTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// -trace prints per-stage timings to stderr; stdout stays the same.
	cmd := exec.Command("go", "run", "./cmd/treewidth",
		"-graph", "testdata/cycle5.graph", "-trace")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("treewidth -trace: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(string(out), "width: 2") {
		t.Fatalf("stdout: %q", out)
	}
	if !strings.Contains(stderr.String(), "decompose") {
		t.Fatalf("trace missing from stderr: %q", stderr.String())
	}
	// A generous -timeout must not change behavior.
	out2 := runTool(t, "./cmd/treewidth", "-graph", "testdata/cycle5.graph", "-timeout", "1m")
	if !strings.Contains(out2, "width: 2") {
		t.Fatalf("output with -timeout: %q", out2)
	}
}
